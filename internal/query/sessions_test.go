package query

import (
	"testing"
	"time"

	"browserprov/internal/event"
)

func TestSessionsSplitOnGaps(t *testing.T) {
	f := newFixture(t)
	// Session 1: three visits within minutes.
	f.visit(t, "http://a.example/", "A", "", event.TransTyped)
	f.visit(t, "http://b.example/", "B", "http://a.example/", event.TransLink)
	f.visit(t, "http://c.example/", "C", "http://b.example/", event.TransLink)
	// Quiet for 2 hours.
	f.now = f.now.Add(2 * time.Hour)
	// Session 2: two visits.
	f.visit(t, "http://d.example/", "D", "", event.TransTyped)
	f.visit(t, "http://e.example/", "E", "http://d.example/", event.TransLink)

	e := NewEngine(f.s, Options{})
	sessions := e.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	if len(sessions[0].Visits) != 3 || len(sessions[1].Visits) != 2 {
		t.Fatalf("session sizes = %d, %d", len(sessions[0].Visits), len(sessions[1].Visits))
	}
	if !sessions[0].End.Before(sessions[1].Start) {
		t.Fatal("sessions overlap")
	}
}

func TestSessionsEmptyHistory(t *testing.T) {
	f := newFixture(t)
	e := NewEngine(f.s, Options{})
	if got := e.Sessions(); len(got) != 0 {
		t.Fatalf("sessions on empty history = %d", len(got))
	}
}

func TestSessionOfNode(t *testing.T) {
	f := newFixture(t)
	f.visit(t, "http://one.example/", "One", "", event.TransTyped)
	f.now = f.now.Add(3 * time.Hour)
	f.visit(t, "http://two.example/", "Two", "", event.TransTyped)
	f.download(t, "http://two.example/f.zip", "http://two.example/", "/dl/f.zip")

	e := NewEngine(f.s, Options{})
	dl := f.s.Downloads()[0]
	s, ok := e.SessionOf(dl)
	if !ok {
		t.Fatal("download's session not found")
	}
	// The session containing the download is the second one: it holds
	// the "two" visit, not "one".
	hasTwo := false
	for _, v := range s.Visits {
		n, _ := f.s.NodeByID(v)
		if n.URL == "http://two.example/" {
			hasTwo = true
		}
		if n.URL == "http://one.example/" {
			t.Fatal("download assigned to the earlier session")
		}
	}
	if !hasTwo {
		t.Fatal("session missing its visit")
	}
}

func TestSummarizeSessions(t *testing.T) {
	f := newFixture(t)
	for day := 0; day < 3; day++ {
		f.visit(t, "http://daily.example/", "Daily", "", event.TransTyped)
		f.visit(t, "http://other.example/", "Other", "http://daily.example/", event.TransLink)
		f.now = f.now.Add(24 * time.Hour)
	}
	e := NewEngine(f.s, Options{})
	sums := e.SummarizeSessions(2)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	// Newest first.
	if !sums[0].Start.After(sums[1].Start) {
		t.Fatal("summaries not newest-first")
	}
	if sums[0].Visits != 2 || len(sums[0].Pages) != 2 {
		t.Fatalf("summary = %+v", sums[0])
	}
}

func TestSessionsBoundStaleTabs(t *testing.T) {
	f := newFixture(t)
	// A visit "closed" a day later (stale tab) must not stretch its
	// session across the day.
	f.visit(t, "http://stale.example/", "Stale", "", event.TransTyped)
	f.now = f.now.Add(24 * time.Hour)
	f.apply(t, &event.Event{Time: f.now, Type: event.TypeClose, Tab: f.tab, URL: "http://stale.example/"})
	f.now = f.now.Add(time.Hour)
	f.visit(t, "http://next.example/", "Next", "", event.TransTyped)

	e := NewEngine(f.s, Options{})
	sessions := e.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2 (stale close must not merge them)", len(sessions))
	}
}
