package query

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"browserprov/internal/event"
)

func TestViewPinsGeneration(t *testing.T) {
	f := newFixture(t)
	buildRosebudHistory(t, f)
	e := NewEngine(f.s, Options{})
	ctx := context.Background()

	v := e.View()
	gen := v.Generation()
	if gen == 0 {
		t.Fatal("view at generation 0")
	}

	// Writes move the store, not the held View.
	f.visit(t, "http://after.example/", "After pin", "", event.TransTyped)
	if f.s.Generation() == gen {
		t.Fatal("store generation did not move")
	}

	_, m1, err := v.Search(ctx, "rosebud", 10)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := v.TextualSearch(ctx, "rosebud", 10)
	if err != nil {
		t.Fatal(err)
	}
	_, m3, err := v.Personalize(ctx, "rosebud", 5)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Generation != gen || m2.Generation != gen || m3.Generation != gen {
		t.Fatalf("generations diverged: %d %d %d, want %d", m1.Generation, m2.Generation, m3.Generation, gen)
	}
	// The pinned View must not see the post-pin page.
	hits, _, _ := v.TextualSearch(ctx, "after pin", 10)
	if len(hits) != 0 {
		t.Fatalf("pinned view leaked post-pin writes: %+v", hits)
	}
	// A fresh View does.
	fresh, _, _ := e.View().TextualSearch(ctx, "after pin", 10)
	if len(fresh) != 1 {
		t.Fatalf("fresh view missed new page: %+v", fresh)
	}
}

// TestPerCallOptionsShareSnapshot is the no-rebuild regression guard:
// two queries with different per-call options on one View must share
// the same snapshot pointer and the same text index — option changes
// cost zero re-indexing.
func TestPerCallOptionsShareSnapshot(t *testing.T) {
	f := newFixture(t)
	// Chain: seed -> d1 -> d2 -> d3, so expansion depth discriminates.
	f.visit(t, "http://seed.example/", "Anchorword", "", event.TransTyped)
	f.visit(t, "http://d1.example/", "One", "http://seed.example/", event.TransLink)
	f.visit(t, "http://d2.example/", "Two", "http://d1.example/", event.TransLink)
	f.visit(t, "http://d3.example/", "Three", "http://d2.example/", event.TransLink)
	e := NewEngine(f.s, Options{})
	ctx := context.Background()

	v := e.View()
	snBefore := v.Snapshot()
	ixBefore := e.Index()

	shallow, _, err := v.Search(ctx, "anchorword", 20, WithDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	deep, _, err := v.Search(ctx, "anchorword", 20, WithDepth(5), WithHITS(true))
	if err != nil {
		t.Fatal(err)
	}
	if v.Snapshot() != snBefore {
		t.Fatal("per-call options rebuilt the snapshot")
	}
	if e.Index() != ixBefore {
		t.Fatal("per-call options rebuilt the text index")
	}
	// The options must actually bite: depth-5 reaches d3, depth-1 cannot
	// even reach d2.
	has := func(hits []PageHit, substr string) bool {
		for _, h := range hits {
			if strings.Contains(h.URL, substr) {
				return true
			}
		}
		return false
	}
	if has(shallow, "d2.example") {
		t.Fatalf("depth-1 reached d2: %+v", shallow)
	}
	if !has(deep, "d3.example") {
		t.Fatalf("depth-5 missed d3: %+v", deep)
	}
}

func TestExpiredContextReturnsPromptly(t *testing.T) {
	f := newFixture(t)
	buildRosebudHistory(t, f)
	e := NewEngine(f.s, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired before the query launches

	v := e.View()
	start := time.Now()
	hits, meta, err := v.Search(ctx, "rosebud", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Canceled {
		t.Fatalf("meta = %+v, want Canceled", meta)
	}
	if len(hits) != 0 {
		t.Fatalf("canceled query returned full results: %+v", hits)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled query blocked for %v", elapsed)
	}
	// The other query families honour the same contract.
	if _, meta, _ := v.TimeContextualSearch(ctx, "wine", "tickets", 5); !meta.Canceled {
		t.Fatal("TimeContextualSearch ignored expired context")
	}
	if _, meta, _ := v.Sessions(ctx); !meta.Canceled {
		t.Fatal("Sessions ignored expired context")
	}
}

func TestContextDeadlineBoundsBudget(t *testing.T) {
	f := newFixture(t)
	buildRosebudHistory(t, f)
	e := NewEngine(f.s, Options{})

	// A generous budget but an already-past context deadline: the
	// effective deadline is the context's, so the run reports truncation
	// or cancellation immediately rather than working 1h.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, meta, err := e.View().Search(ctx, "rosebud", 10, WithBudget(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Truncated && !meta.Canceled {
		t.Fatalf("meta = %+v, want Truncated or Canceled", meta)
	}
}

func TestViewAt(t *testing.T) {
	f := newFixture(t)
	buildRosebudHistory(t, f)
	e := NewEngine(f.s, Options{})
	ctx := context.Background()

	v1 := e.View()
	gen1 := v1.Generation()
	f.visit(t, "http://later.example/", "Later", "", event.TransTyped)
	v2 := e.View()
	if v2.Generation() == gen1 {
		t.Fatal("generation did not advance")
	}

	// The older epoch is retained: ViewAt returns a working handle.
	back := e.ViewAt(gen1)
	if err := back.Err(); err != nil {
		t.Fatalf("ViewAt(%d): %v", gen1, err)
	}
	if _, meta, err := back.TextualSearch(ctx, "rosebud", 5); err != nil || meta.Generation != gen1 {
		t.Fatalf("ViewAt query: meta=%+v err=%v", meta, err)
	}

	// A generation never materialised fails with the sentinel.
	missing := e.ViewAt(gen1 + 100000)
	if !errors.Is(missing.Err(), ErrNoSuchGeneration) {
		t.Fatalf("Err = %v, want ErrNoSuchGeneration", missing.Err())
	}
	if _, _, err := missing.Search(ctx, "rosebud", 5); !errors.Is(err, ErrNoSuchGeneration) {
		t.Fatalf("query err = %v, want ErrNoSuchGeneration", err)
	}
}

func TestDownloadLineageSentinels(t *testing.T) {
	f := newFixture(t)
	buildMalwareHistory(t, f)
	e := NewEngine(f.s, Options{})
	ctx := context.Background()
	v := e.View()

	if _, _, err := v.DownloadLineageByPath(ctx, "/no/such/file"); !errors.Is(err, ErrNoSuchDownload) {
		t.Fatalf("missing path err = %v, want ErrNoSuchDownload", err)
	}
	// A node that exists but is not a download is also no download.
	page, _ := f.s.PageByURL("http://forum.example/")
	if _, _, err := v.DownloadLineage(ctx, page.ID); !errors.Is(err, ErrNoSuchDownload) {
		t.Fatalf("non-download node err = %v, want ErrNoSuchDownload", err)
	}
	// The happy path still works by path.
	lin, meta, err := v.DownloadLineageByPath(ctx, "/home/u/codec.exe")
	if err != nil || !lin.Found {
		t.Fatalf("lineage by path: found=%v err=%v", lin.Found, err)
	}
	if meta.Generation != v.Generation() {
		t.Fatalf("meta.Generation = %d", meta.Generation)
	}
}

// TestPerCallRecognizableThreshold exercises WithRecognizableVisits
// resolving per call against one View (the old API needed a second
// engine per threshold).
func TestPerCallRecognizableThreshold(t *testing.T) {
	f := newFixture(t)
	buildMalwareHistory(t, f)
	e := NewEngine(f.s, Options{})
	ctx := context.Background()
	v := e.View()
	dl := f.s.Downloads()[0]

	// Default threshold (3): the forum (5 typed visits) is recognizable.
	lin, _, err := v.DownloadLineage(ctx, dl)
	if err != nil || !lin.Found {
		t.Fatalf("default threshold: found=%v err=%v", lin.Found, err)
	}
	// An impossible threshold on the same View: nothing qualifies.
	// (Typed visits still force recognizability, so raise the bar via a
	// RawGraph+threshold combination that the fixture's chain cannot
	// meet — the forum is typed, so instead verify the threshold knob
	// reaches the predicate through Run.Recognizable directly.)
	r, err := v.Begin(ctx, WithRecognizableVisits(100))
	if err != nil {
		t.Fatal(err)
	}
	page, _ := f.s.PageByURL("http://shady.example/landing")
	if r.Recognizable(page) {
		t.Fatal("2-visit page recognizable under threshold 100")
	}
	r2, err := v.Begin(ctx, WithRecognizableVisits(2))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Recognizable(page) {
		t.Fatal("2-visit page not recognizable under threshold 2")
	}
}
