// Package query implements the paper's four use-case queries (§2) over
// the provenance graph store:
//
//   - Contextual history search (§2.1): textual search re-ranked and
//     extended by provenance neighborhood expansion (after Shah et al.),
//     optionally refined with HITS over the expanded subgraph.
//   - Personalised web search (§2.2): term-frequency analysis over the
//     contextual neighborhood to find user-specific terms to add to a
//     web query — personalisation without sending history to the engine.
//   - Time-contextual history search (§2.3): "wine associated with plane
//     tickets" — matches ranked by co-display interval overlap.
//   - Download lineage (§2.4): breadth-first ancestor search to the
//     first recognizable page, and descendant scans for downloads.
//
// The canonical way in is a snapshot-pinned View (see view.go): every
// query takes a context, variadic per-call options, and runs under a
// time budget (default 200 ms, the bound the paper reports); expansion
// checks budget and cancellation between frontier rounds, so results
// degrade gracefully instead of blowing the deadline.
package query

import (
	"context"
	"sync"
	"sync/atomic"

	"browserprov/internal/provgraph"
	"browserprov/internal/textindex"
)

// viewRetain is how many materialised epoch snapshots the engine keeps
// for ViewAt time travel. Snapshots share their sealed epoch by
// reference, so retention costs only the unsealed tails.
const viewRetain = 8

// Engine evaluates use-case queries against one provenance store.
//
// Queries never touch the live store: each runs against an immutable
// epoch snapshot (provgraph.Snapshot), so concurrent queries proceed
// lock-free and never contend with each other. The engine caches the
// snapshot and its text index per store generation; when the store
// moves, the next query re-snapshots and catches the index up
// incrementally from its node-ID watermark.
type Engine struct {
	store *provgraph.Store
	opts  Options

	// curr is the cached per-generation view; the read fast path is two
	// atomic loads (store generation + cached snapshot).
	curr atomic.Pointer[provgraph.Snapshot]

	// mu serialises snapshot refresh and index catch-up. The index is
	// monotonic (history is append-only between expirations), so it is
	// shared across generations; lastIndexed is the watermark.
	mu          sync.Mutex
	index       *textindex.Index
	lastIndexed provgraph.NodeID

	// recent retains the last viewRetain materialised snapshots keyed by
	// generation, for ViewAt. Guarded by mu.
	recent      map[uint64]*provgraph.Snapshot
	recentOrder []uint64
}

// NewEngine builds an engine over store, indexing every page, search
// term, download and form node for textual search. Pass Options{} for
// the defaults; any knob can be overridden per query call with the
// With* options.
//
// When the store was opened from a columnar (v2) checkpoint, the engine
// warm-starts: it claims the checkpoint's text-index postings and
// indexes only nodes past the persisted watermark, instead of
// retokenizing the whole history on the first query. It also registers
// itself as the store's checkpoint text source, so subsequent
// checkpoints carry the index forward.
func NewEngine(store *provgraph.Store, opts Options) *Engine {
	e := &Engine{
		store:  store,
		opts:   opts,
		index:  textindex.New(),
		recent: make(map[uint64]*provgraph.Snapshot, viewRetain),
	}
	if ix, watermark, ok := store.RecoveredTextIndex(); ok {
		e.index = ix
		e.lastIndexed = watermark
	}
	store.SetTextCheckpointSource(e.checkpointText)
	e.snapshot() // prime the first view and index the remaining history
	return e
}

// checkpointText serialises the engine's index for a checkpoint fenced
// at maxDoc. The saved postings are cut at min(indexed, maxDoc): never
// past the checkpoint's graph (a crash that loses WAL tail must not
// leave the recovered index ahead of the recovered graph), and never
// past what is actually indexed (re-indexing an already-loaded doc
// would stack its terms twice).
func (e *Engine) checkpointText(maxDoc provgraph.NodeID) ([]byte, provgraph.NodeID) {
	e.mu.Lock()
	watermark := e.lastIndexed
	e.mu.Unlock()
	if maxDoc < watermark {
		watermark = maxDoc
	}
	// SaveUnder takes the index's own lock; writers may keep indexing
	// past the watermark concurrently — the doc-sorted cut is immune.
	return e.index.SaveUnder(textindex.DocID(watermark)), watermark
}

// snapshot returns the engine's current immutable view, refreshing the
// cached snapshot and catching the text index up when the store moved.
func (e *Engine) snapshot() *provgraph.Snapshot {
	if sn := e.curr.Load(); sn != nil && sn.Generation() == e.store.Generation() {
		return sn
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if sn := e.curr.Load(); sn != nil && sn.Generation() == e.store.Generation() {
		return sn
	}
	sn := e.store.Snapshot()
	// Index only the delta: node IDs are dense and monotonic, so
	// everything new since the last refresh is (watermark, maxID].
	sn.NodesSince(e.lastIndexed, func(n provgraph.Node) bool {
		e.indexNode(n)
		return true
	})
	e.lastIndexed = sn.MaxNodeID()
	e.curr.Store(sn)
	e.retain(sn)
	return sn
}

// retain records sn in the ViewAt ring, evicting the oldest entry
// beyond viewRetain. Caller holds e.mu.
func (e *Engine) retain(sn *provgraph.Snapshot) {
	gen := sn.Generation()
	if _, ok := e.recent[gen]; ok {
		return
	}
	e.recent[gen] = sn
	e.recentOrder = append(e.recentOrder, gen)
	for len(e.recentOrder) > viewRetain {
		delete(e.recent, e.recentOrder[0])
		e.recentOrder = e.recentOrder[1:]
	}
}

// Snapshot returns the immutable graph view queries currently run
// against, refreshing it if the store has moved. Callers composing
// multi-step reads should prefer View, which pins one snapshot for the
// whole investigation.
func (e *Engine) Snapshot() *provgraph.Snapshot { return e.snapshot() }

// indexNode adds one node to the text index. Visit instances are not
// indexed separately — they share their page's identity; queries seed
// expansion from the page's instances.
func (e *Engine) indexNode(n provgraph.Node) {
	switch n.Kind {
	case provgraph.KindPage:
		e.index.Add(textindex.DocID(n.ID), n.URL, n.Title)
	case provgraph.KindSearchTerm:
		e.index.Add(textindex.DocID(n.ID), n.Text)
	case provgraph.KindDownload:
		e.index.Add(textindex.DocID(n.ID), n.URL, n.Text)
	case provgraph.KindFormEntry:
		e.index.Add(textindex.DocID(n.ID), n.Text)
	}
}

// Index exposes the engine's text index (used by the personalisation
// term analysis and by benchmarks). It is caught up to the store's
// current generation first.
func (e *Engine) Index() *textindex.Index {
	e.snapshot()
	return e.index
}

// Store returns the underlying provenance store.
func (e *Engine) Store() *provgraph.Store { return e.store }

// ---- deprecated convenience wrappers ----
//
// The pre-View API, kept as thin wrappers over a fresh View so existing
// callers migrate incrementally. Each call pins the current epoch,
// runs with context.Background() and the engine's base options, and
// drops the error (which, absent a broken View, is always nil here).

// ContextualSearch runs §2.1 on a fresh View.
//
// Deprecated: use View().Search(ctx, q, k, opts...).
func (e *Engine) ContextualSearch(q string, k int) ([]PageHit, Meta) {
	hits, meta, _ := e.View().Search(context.Background(), q, k)
	return hits, meta
}

// TextualSearch is the provenance-unaware baseline on a fresh View.
//
// Deprecated: use View().TextualSearch(ctx, q, k, opts...).
func (e *Engine) TextualSearch(q string, k int) []PageHit {
	hits, _, _ := e.View().TextualSearch(context.Background(), q, k)
	return hits
}

// Personalize runs §2.2 on a fresh View.
//
// Deprecated: use View().Personalize(ctx, q, n, opts...).
func (e *Engine) Personalize(q string, n int) ([]TermSuggestion, Meta) {
	s, meta, _ := e.View().Personalize(context.Background(), q, n)
	return s, meta
}

// AugmentQuery runs the §2.2 augmentation on a fresh View.
//
// Deprecated: use View().AugmentQuery(ctx, q, minWeight, opts...).
func (e *Engine) AugmentQuery(q string, minWeight float64) (string, Meta) {
	out, meta, _ := e.View().AugmentQuery(context.Background(), q, minWeight)
	return out, meta
}

// TimeContextualSearch runs §2.3 on a fresh View.
//
// Deprecated: use View().TimeContextualSearch(ctx, q, anchor, k, opts...).
func (e *Engine) TimeContextualSearch(q, anchor string, k int) ([]TimeHit, Meta) {
	hits, meta, _ := e.View().TimeContextualSearch(context.Background(), q, anchor, k)
	return hits, meta
}

// DownloadLineage runs §2.4 on a fresh View.
//
// Deprecated: use View().DownloadLineage(ctx, download, opts...).
func (e *Engine) DownloadLineage(download provgraph.NodeID) (Lineage, Meta) {
	lin, meta, _ := e.View().DownloadLineage(context.Background(), download)
	return lin, meta
}

// DescendantDownloads runs the §2.4 descendant scan on a fresh View.
//
// Deprecated: use View().DescendantDownloads(ctx, pageURL, opts...).
func (e *Engine) DescendantDownloads(pageURL string) ([]provgraph.Node, Meta) {
	dls, meta, _ := e.View().DescendantDownloads(context.Background(), pageURL)
	return dls, meta
}

// AncestorTerms lists lineage search terms on a fresh View.
//
// Deprecated: use View().AncestorTerms(ctx, n, opts...).
func (e *Engine) AncestorTerms(n provgraph.NodeID) ([]string, Meta) {
	terms, meta, _ := e.View().AncestorTerms(context.Background(), n)
	return terms, meta
}

// Sessions reconstructs sittings on a fresh View.
//
// Deprecated: use View().Sessions(ctx, opts...).
func (e *Engine) Sessions() []Session {
	s, _, _ := e.View().Sessions(context.Background())
	return s
}

// SummarizeSessions summarises recent sittings on a fresh View.
//
// Deprecated: use View().SummarizeSessions(ctx, n, opts...).
func (e *Engine) SummarizeSessions(n int) []SessionSummary {
	s, _, _ := e.View().SummarizeSessions(context.Background(), n)
	return s
}

// Recognizable is the §2.4 predicate under the engine's base options.
//
// Deprecated: judge nodes through a Run (Run.Recognizable) so the whole
// traversal shares one snapshot and one threshold.
func (e *Engine) Recognizable(n provgraph.Node) bool {
	return recognizableIn(e.snapshot(), n, e.opts.recognizable())
}

// RecognizableIn is Recognizable evaluated against a specific snapshot.
//
// Deprecated: use Run.Recognizable.
func (e *Engine) RecognizableIn(sn *provgraph.Snapshot, n provgraph.Node) bool {
	return recognizableIn(sn, n, e.opts.recognizable())
}
