// Package query implements the paper's four use-case queries (§2) over
// the provenance graph store:
//
//   - Contextual history search (§2.1): textual search re-ranked and
//     extended by provenance neighborhood expansion (after Shah et al.),
//     optionally refined with HITS over the expanded subgraph.
//   - Personalised web search (§2.2): term-frequency analysis over the
//     contextual neighborhood to find user-specific terms to add to a
//     web query — personalisation without sending history to the engine.
//   - Time-contextual history search (§2.3): "wine associated with plane
//     tickets" — matches ranked by co-display interval overlap.
//   - Download lineage (§2.4): breadth-first ancestor search to the
//     first recognizable page, and descendant scans for downloads.
//
// Every query runs under a time budget (default 200 ms, the bound the
// paper reports); expansion checks the budget between frontier rounds,
// so results degrade gracefully instead of blowing the deadline.
package query

import (
	"sync"
	"sync/atomic"
	"time"

	"browserprov/internal/graph"
	"browserprov/internal/provgraph"
	"browserprov/internal/textindex"
)

// DefaultBudget is the paper's 200 ms interactive bound (§4).
const DefaultBudget = 200 * time.Millisecond

// Options tunes the engine. The zero value gives the defaults used in
// the experiments.
type Options struct {
	// Budget bounds each query's wall-clock time. 0 means DefaultBudget;
	// negative means unlimited.
	Budget time.Duration
	// Decay is the per-hop weight decay of neighborhood expansion.
	// 0 means 0.5.
	Decay float64
	// MaxDepth bounds expansion depth. 0 means 3.
	MaxDepth int
	// MaxNodes bounds the expanded neighborhood size. 0 means 5000.
	MaxNodes int
	// UseHITS additionally runs HITS over the expanded neighborhood and
	// blends authority scores into the ranking.
	UseHITS bool
	// UseLens routes expansion through the redirect-splicing
	// personalisation lens (§3.2) instead of the raw graph. Defaults on
	// for contextual/personalised search; set RawGraph to disable.
	RawGraph bool
	// RecognizableVisits is the visit-count threshold for "a page the
	// user is likely to recognize" in lineage queries (§2.4). 0 means 3.
	RecognizableVisits int
}

func (o Options) budget() time.Duration {
	switch {
	case o.Budget == 0:
		return DefaultBudget
	case o.Budget < 0:
		return 365 * 24 * time.Hour
	default:
		return o.Budget
	}
}

func (o Options) decay() float64 {
	if o.Decay == 0 {
		return 0.5
	}
	return o.Decay
}

func (o Options) maxDepth() int {
	if o.MaxDepth == 0 {
		return 3
	}
	return o.MaxDepth
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return 5000
	}
	return o.MaxNodes
}

func (o Options) recognizable() int {
	if o.RecognizableVisits == 0 {
		return 3
	}
	return o.RecognizableVisits
}

// Engine evaluates use-case queries against one provenance store.
//
// Queries never touch the live store: each runs against an immutable
// epoch snapshot (provgraph.Snapshot), so concurrent queries proceed
// lock-free and never contend with each other. The engine caches the
// snapshot and its text index per store generation; when the store
// moves, the next query re-snapshots and catches the index up
// incrementally from its node-ID watermark.
type Engine struct {
	store *provgraph.Store
	opts  Options

	// curr is the cached per-generation view; the read fast path is two
	// atomic loads (store generation + cached snapshot).
	curr atomic.Pointer[provgraph.Snapshot]

	// mu serialises snapshot refresh and index catch-up. The index is
	// monotonic (history is append-only between expirations), so it is
	// shared across generations; lastIndexed is the watermark.
	mu          sync.Mutex
	index       *textindex.Index
	lastIndexed provgraph.NodeID
}

// NewEngine builds an engine over store, indexing every page, search
// term, download and form node for textual search. Pass Options{} for
// the defaults.
func NewEngine(store *provgraph.Store, opts Options) *Engine {
	e := &Engine{store: store, opts: opts, index: textindex.New()}
	e.snapshot() // prime the first view and index the existing history
	return e
}

// snapshot returns the engine's current immutable view, refreshing the
// cached snapshot and catching the text index up when the store moved.
func (e *Engine) snapshot() *provgraph.Snapshot {
	if sn := e.curr.Load(); sn != nil && sn.Generation() == e.store.Generation() {
		return sn
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if sn := e.curr.Load(); sn != nil && sn.Generation() == e.store.Generation() {
		return sn
	}
	sn := e.store.Snapshot()
	// Index only the delta: node IDs are dense and monotonic, so
	// everything new since the last refresh is (watermark, maxID].
	sn.NodesSince(e.lastIndexed, func(n provgraph.Node) bool {
		e.indexNode(n)
		return true
	})
	e.lastIndexed = sn.MaxNodeID()
	e.curr.Store(sn)
	return sn
}

// Snapshot returns the immutable graph view queries currently run
// against, refreshing it if the store has moved. Callers composing
// multi-step reads (e.g. the PQL evaluator) use one Snapshot for the
// whole evaluation to get a consistent point-in-time answer.
func (e *Engine) Snapshot() *provgraph.Snapshot { return e.snapshot() }

// indexNode adds one node to the text index. Visit instances are not
// indexed separately — they share their page's identity; queries seed
// expansion from the page's instances.
func (e *Engine) indexNode(n provgraph.Node) {
	switch n.Kind {
	case provgraph.KindPage:
		e.index.Add(textindex.DocID(n.ID), n.URL, n.Title)
	case provgraph.KindSearchTerm:
		e.index.Add(textindex.DocID(n.ID), n.Text)
	case provgraph.KindDownload:
		e.index.Add(textindex.DocID(n.ID), n.URL, n.Text)
	case provgraph.KindFormEntry:
		e.index.Add(textindex.DocID(n.ID), n.Text)
	}
}

// Index exposes the engine's text index (used by the personalisation
// term analysis and by benchmarks). It is caught up to the store's
// current generation first.
func (e *Engine) Index() *textindex.Index {
	e.snapshot()
	return e.index
}

// Store returns the underlying provenance store.
func (e *Engine) Store() *provgraph.Store { return e.store }

// deadlineStop returns a stop predicate that trips after the engine's
// budget, plus the deadline itself.
func (e *Engine) deadlineStop() (func() bool, time.Time) {
	deadline := time.Now().Add(e.opts.budget())
	return func() bool { return !time.Now().Before(deadline) }, deadline
}

// viewOf returns the graph the ranking queries traverse over sn: the
// personalisation lens by default, the raw snapshot if configured. The
// lens (and its redirect-resolution memo) is shared by every query on
// the same epoch.
func (e *Engine) viewOf(sn *provgraph.Snapshot) graph.Graph {
	if e.opts.RawGraph {
		return sn
	}
	return sn.Lens()
}

// Meta describes how a query execution went.
type Meta struct {
	// Elapsed is the query's wall-clock time.
	Elapsed time.Duration
	// Truncated reports whether the time budget cut the work short.
	Truncated bool
	// Expanded is the number of nodes the neighborhood expansion scored.
	Expanded int
}
