// Package query implements the paper's four use-case queries (§2) over
// the provenance graph store:
//
//   - Contextual history search (§2.1): textual search re-ranked and
//     extended by provenance neighborhood expansion (after Shah et al.),
//     optionally refined with HITS over the expanded subgraph.
//   - Personalised web search (§2.2): term-frequency analysis over the
//     contextual neighborhood to find user-specific terms to add to a
//     web query — personalisation without sending history to the engine.
//   - Time-contextual history search (§2.3): "wine associated with plane
//     tickets" — matches ranked by co-display interval overlap.
//   - Download lineage (§2.4): breadth-first ancestor search to the
//     first recognizable page, and descendant scans for downloads.
//
// Every query runs under a time budget (default 200 ms, the bound the
// paper reports); expansion checks the budget between frontier rounds,
// so results degrade gracefully instead of blowing the deadline.
package query

import (
	"time"

	"browserprov/internal/graph"
	"browserprov/internal/provgraph"
	"browserprov/internal/textindex"
)

// DefaultBudget is the paper's 200 ms interactive bound (§4).
const DefaultBudget = 200 * time.Millisecond

// Options tunes the engine. The zero value gives the defaults used in
// the experiments.
type Options struct {
	// Budget bounds each query's wall-clock time. 0 means DefaultBudget;
	// negative means unlimited.
	Budget time.Duration
	// Decay is the per-hop weight decay of neighborhood expansion.
	// 0 means 0.5.
	Decay float64
	// MaxDepth bounds expansion depth. 0 means 3.
	MaxDepth int
	// MaxNodes bounds the expanded neighborhood size. 0 means 5000.
	MaxNodes int
	// UseHITS additionally runs HITS over the expanded neighborhood and
	// blends authority scores into the ranking.
	UseHITS bool
	// UseLens routes expansion through the redirect-splicing
	// personalisation lens (§3.2) instead of the raw graph. Defaults on
	// for contextual/personalised search; set RawGraph to disable.
	RawGraph bool
	// RecognizableVisits is the visit-count threshold for "a page the
	// user is likely to recognize" in lineage queries (§2.4). 0 means 3.
	RecognizableVisits int
}

func (o Options) budget() time.Duration {
	switch {
	case o.Budget == 0:
		return DefaultBudget
	case o.Budget < 0:
		return 365 * 24 * time.Hour
	default:
		return o.Budget
	}
}

func (o Options) decay() float64 {
	if o.Decay == 0 {
		return 0.5
	}
	return o.Decay
}

func (o Options) maxDepth() int {
	if o.MaxDepth == 0 {
		return 3
	}
	return o.MaxDepth
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return 5000
	}
	return o.MaxNodes
}

func (o Options) recognizable() int {
	if o.RecognizableVisits == 0 {
		return 3
	}
	return o.RecognizableVisits
}

// Engine evaluates use-case queries against one provenance store.
type Engine struct {
	store *provgraph.Store
	index *textindex.Index
	opts  Options
}

// NewEngine builds an engine over store, indexing every page, search
// term, download and form node for textual search. Pass Options{} for
// the defaults.
func NewEngine(store *provgraph.Store, opts Options) *Engine {
	e := &Engine{store: store, index: textindex.New(), opts: opts}
	store.EachNode(func(n provgraph.Node) bool {
		e.indexNode(n)
		return true
	})
	return e
}

// indexNode adds one node to the text index. Visit instances are not
// indexed separately — they share their page's identity; queries seed
// expansion from the page's instances.
func (e *Engine) indexNode(n provgraph.Node) {
	switch n.Kind {
	case provgraph.KindPage:
		e.index.Add(textindex.DocID(n.ID), n.URL, n.Title)
	case provgraph.KindSearchTerm:
		e.index.Add(textindex.DocID(n.ID), n.Text)
	case provgraph.KindDownload:
		e.index.Add(textindex.DocID(n.ID), n.URL, n.Text)
	case provgraph.KindFormEntry:
		e.index.Add(textindex.DocID(n.ID), n.Text)
	}
}

// ObserveNode keeps the index current as the store grows (call after
// ingesting new events; the engine does not watch the store).
func (e *Engine) ObserveNode(n provgraph.Node) { e.indexNode(n) }

// Index exposes the engine's text index (used by the personalisation
// term analysis and by benchmarks).
func (e *Engine) Index() *textindex.Index { return e.index }

// Store returns the underlying provenance store.
func (e *Engine) Store() *provgraph.Store { return e.store }

// deadlineStop returns a stop predicate that trips after the engine's
// budget, plus the deadline itself.
func (e *Engine) deadlineStop() (func() bool, time.Time) {
	deadline := time.Now().Add(e.opts.budget())
	return func() bool { return !time.Now().Before(deadline) }, deadline
}

// view returns the graph the ranking queries traverse: the
// personalisation lens by default, the raw store if configured.
func (e *Engine) view() graph.Graph {
	if e.opts.RawGraph {
		return e.store
	}
	return e.store.NewLens()
}

// Meta describes how a query execution went.
type Meta struct {
	// Elapsed is the query's wall-clock time.
	Elapsed time.Duration
	// Truncated reports whether the time budget cut the work short.
	Truncated bool
	// Expanded is the number of nodes the neighborhood expansion scored.
	Expanded int
}
