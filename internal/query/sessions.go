package query

import (
	"context"
	"time"

	"browserprov/internal/provgraph"
)

// Session is a contiguous sitting of browsing activity: visits whose
// open times are separated by less than the session gap. Sessions are
// the paper's "similar time span" (§2.3) made first-class: Gyllstrom &
// Soules built retrieval on exactly this notion of temporal context.
type Session struct {
	Start  time.Time
	End    time.Time
	Visits []provgraph.NodeID
}

// sessionGap splits sessions: a quiet period this long ends a sitting.
const sessionGap = 30 * time.Minute

// Sessions reconstructs the history's sittings in chronological order by
// splitting the visit timeline at gaps of 30 minutes or more.
func (v *View) Sessions(ctx context.Context, opts ...Option) ([]Session, Meta, error) {
	r, err := v.Begin(ctx, opts...)
	if err != nil {
		return nil, Meta{}, err
	}
	out := r.sessions()
	return out, r.Finish(), nil
}

func (r *Run) sessions() []Session {
	if r.Stop() {
		return nil
	}
	sn := r.Snapshot()
	var out []Session
	var cur *Session
	// OpenBetween over all time yields visits in open order.
	for _, v := range sn.OpenBetween(time.Time{}, time.Unix(1<<40, 0)) {
		n, ok := sn.NodeByID(v)
		if !ok {
			continue
		}
		if cur == nil || n.Open.Sub(cur.End) >= sessionGap {
			out = append(out, Session{Start: n.Open, End: n.Open})
			cur = &out[len(out)-1]
		}
		cur.Visits = append(cur.Visits, v)
		if n.Open.After(cur.End) {
			cur.End = n.Open
		}
		// A close extends the sitting only if it happened while the user
		// was plausibly still active; a close recorded hours later (tab
		// replaced long after reading ended) is not activity.
		if !n.Close.IsZero() && n.Close.After(cur.End) && n.Close.Sub(n.Open) < sessionGap {
			cur.End = n.Close
		}
	}
	return out
}

// SessionOf returns the session containing the given visit node, and
// whether one was found. For non-visit nodes (downloads, terms), the
// session is located by the node's creation time.
func (v *View) SessionOf(ctx context.Context, id provgraph.NodeID, opts ...Option) (Session, bool, Meta, error) {
	r, err := v.Begin(ctx, opts...)
	if err != nil {
		return Session{}, false, Meta{}, err
	}
	n, ok := r.Snapshot().NodeByID(id)
	if !ok {
		return Session{}, false, r.Finish(), nil
	}
	for _, s := range r.sessions() {
		// A node belongs to the session whose span (padded by the gap)
		// covers its open time.
		if !n.Open.Before(s.Start) && n.Open.Sub(s.End) < sessionGap {
			return s, true, r.Finish(), nil
		}
	}
	return Session{}, false, r.Finish(), nil
}

// SessionOf is the deprecated engine-level form of View.SessionOf.
//
// Deprecated: use View().SessionOf.
func (e *Engine) SessionOf(id provgraph.NodeID) (Session, bool) {
	s, ok, _, _ := e.View().SessionOf(context.Background(), id)
	return s, ok
}

// SessionSummary describes a session for display: its span and the
// most-visited pages within it.
type SessionSummary struct {
	Start  time.Time
	End    time.Time
	Pages  []provgraph.Node
	Visits int
}

// SummarizeSessions returns display summaries of the most recent n
// sessions (newest first).
func (v *View) SummarizeSessions(ctx context.Context, n int, opts ...Option) ([]SessionSummary, Meta, error) {
	r, err := v.Begin(ctx, opts...)
	if err != nil {
		return nil, Meta{}, err
	}
	sn := r.Snapshot()
	sessions := r.sessions()
	if n > 0 && len(sessions) > n {
		sessions = sessions[len(sessions)-n:]
	}
	out := make([]SessionSummary, 0, len(sessions))
	seen := &r.arena.Seen
	for i := len(sessions) - 1; i >= 0; i-- {
		s := sessions[i]
		sum := SessionSummary{Start: s.Start, End: s.End, Visits: len(s.Visits)}
		seen.Reset(r.arena.NodeCap())
		for _, v := range s.Visits {
			vn, ok := sn.NodeByID(v)
			if !ok || !seen.TrySet(vn.Page) {
				continue
			}
			if pn, ok := sn.NodeByID(vn.Page); ok && len(sum.Pages) < 5 {
				sum.Pages = append(sum.Pages, pn)
			}
		}
		out = append(out, sum)
	}
	return out, r.Finish(), nil
}
