package query

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"browserprov/internal/event"
	"browserprov/internal/graph"
	"browserprov/internal/provgraph"
	"browserprov/internal/textindex"
)

// This file pins the dense-arena query pipeline to the map-based
// reference: the pre-arena implementations of contextual search and
// personalisation are kept here verbatim (running on graph.Expand /
// graph.HITS and hash maps) and randomized workloads assert that the
// arena pipeline returns identical hit sets, scores and order.

// referenceContextualSearch is the §2.1 pipeline exactly as it ran
// before the dense-arena rewrite.
func referenceContextualSearch(r *Run, q string, k int) []PageHit {
	if r.Stop() {
		return nil
	}
	sn := r.Snapshot()
	textHits := r.searchIndex(q, 200)
	seeds := make(map[graph.NodeID]float64, len(textHits)*2)
	textScore := make(map[provgraph.NodeID]float64, len(textHits))
	for _, h := range textHits {
		id := provgraph.NodeID(h.Doc)
		n, ok := sn.NodeByID(id)
		if !ok {
			continue
		}
		switch n.Kind {
		case provgraph.KindPage:
			textScore[id] = h.Score
			for _, v := range sn.VisitsOfPage(id) {
				seeds[v] = h.Score
			}
			if sn.Mode() == provgraph.VersionEdges {
				seeds[id] = h.Score
			}
		default:
			seeds[id] = h.Score
		}
	}
	g := r.graphView()
	scores := graph.Expand(g, seeds, graph.Undirected, r.opts.decay(), r.opts.maxDepth(), r.opts.maxNodes(), r.Stop)
	var auth map[graph.NodeID]float64
	if r.opts.UseHITS && !r.Stop() {
		sub := make([]graph.NodeID, 0, len(scores))
		for n := range scores {
			sub = append(sub, n)
		}
		sort.Slice(sub, func(i, j int) bool { return sub[i] < sub[j] })
		_, auth = graph.HITS(g, sub, 20, 1e-6)
	}
	pageProv := make(map[provgraph.NodeID]float64, len(scores))
	for id, w := range scores {
		n, ok := sn.NodeByID(id)
		if !ok {
			continue
		}
		var page provgraph.NodeID
		switch n.Kind {
		case provgraph.KindVisit:
			page = n.Page
		case provgraph.KindPage:
			page = n.ID
		default:
			continue
		}
		contrib := w
		if auth != nil {
			contrib += wHITS * auth[id] * w
		}
		if contrib > pageProv[page] {
			pageProv[page] = contrib
		}
	}
	hits := make([]PageHit, 0, len(pageProv))
	for page, prov := range pageProv {
		n, ok := sn.NodeByID(page)
		if !ok {
			continue
		}
		ts := textScore[page]
		hits = append(hits, PageHit{
			Page: page, URL: n.URL, Title: n.Title,
			TextScore: ts, ProvScore: prov,
			Score: wText*ts + wProv*prov,
		})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Page < hits[j].Page
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// referencePersonalize is §2.2 exactly as it ran before the rewrite
// (map-copying TermsOf, reference contextual stage).
func referencePersonalize(r *Run, q string, nTerms int) []TermSuggestion {
	sn := r.Snapshot()
	index := r.v.e.index
	hits := referenceContextualSearch(r, q, 50)
	queryTerms := make(map[string]bool)
	for _, t := range textindex.Tokenize(q) {
		queryTerms[t] = true
	}
	weights := make(map[string]float64)
	for _, h := range hits {
		if h.Score <= 0 {
			continue
		}
		for term, tf := range index.TermsOf(textindex.DocID(h.Page)) {
			if queryTerms[term] {
				continue
			}
			weights[term] += float64(tf) * h.Score
		}
	}
	for _, h := range hits {
		for _, v := range sn.VisitsOfPage(h.Page) {
			for _, edge := range sn.InEdges(v) {
				if edge.Kind != provgraph.EdgeSearchResults {
					continue
				}
				if tn, ok := sn.NodeByID(edge.From); ok {
					for _, t := range textindex.Tokenize(tn.Text) {
						if !queryTerms[t] && !textindex.IsStopword(t) {
							weights[t] += h.Score
						}
					}
				}
			}
		}
	}
	total := index.NumDocsUnder(r.maxDoc())
	out := make([]TermSuggestion, 0, len(weights))
	for term, w := range weights {
		df := index.DocFreqUnder(term, r.maxDoc())
		idf := 1.0
		if df > 0 && total > 0 {
			idf = math.Log(1 + float64(total)/float64(df))
		}
		out = append(out, TermSuggestion{Term: term, Weight: w * idf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Term < out[j].Term
	})
	if nTerms > 0 && len(out) > nTerms {
		out = out[:nTerms]
	}
	return out
}

// vocab is the randomized workload's title vocabulary; queries draw
// from it so text matches are plentiful.
var vocab = []string{
	"wine", "bordeaux", "cellar", "ticket", "flight", "paris",
	"garden", "rosebud", "flower", "news", "story", "recipe",
	"cheese", "market", "museum", "train", "hotel", "review",
}

// buildRandomHistory drives a randomized but deterministic workload:
// typed visits, link chains, searches with click-throughs, downloads.
func buildRandomHistory(t *testing.T, f *fixture, seed int64, events int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var urls []string
	title := func() string {
		a := vocab[rng.Intn(len(vocab))]
		b := vocab[rng.Intn(len(vocab))]
		return fmt.Sprintf("%s %s digest %d", a, b, rng.Intn(50))
	}
	for i := 0; i < events; i++ {
		switch r := rng.Float64(); {
		case r < 0.15 || len(urls) == 0:
			u := fmt.Sprintf("http://h%d.example/%s-%d", rng.Intn(12), vocab[rng.Intn(len(vocab))], i)
			f.visit(t, u, title(), "", event.TransTyped)
			urls = append(urls, u)
		case r < 0.25:
			from := urls[rng.Intn(len(urls))]
			results := f.search(t, from, vocab[rng.Intn(len(vocab))]+" "+vocab[rng.Intn(len(vocab))])
			u := fmt.Sprintf("http://h%d.example/%s-%d", rng.Intn(12), vocab[rng.Intn(len(vocab))], i)
			f.visit(t, u, title(), results, event.TransSearchResult)
			urls = append(urls, u)
		case r < 0.30:
			from := urls[rng.Intn(len(urls))]
			f.download(t, from+"/file.bin", from, fmt.Sprintf("/tmp/dl-%d-%d.bin", seed, i))
		case r < 0.45:
			// Revisit an existing page (builds up visit counts).
			f.visit(t, urls[rng.Intn(len(urls))], "", urls[rng.Intn(len(urls))], event.TransLink)
		default:
			from := urls[rng.Intn(len(urls))]
			u := fmt.Sprintf("http://h%d.example/%s-%d", rng.Intn(12), vocab[rng.Intn(len(vocab))], i)
			f.visit(t, u, title(), from, event.TransLink)
			urls = append(urls, u)
		}
	}
}

// comparePageHits asserts got and want hold the same hit set with the
// same per-page scores (within fp accumulation-order noise, which the
// map reference re-rolls every run), and that got is correctly ordered
// by its own scores. Rank-by-rank page equality would be flaky: two
// pages whose scores are mathematically tied can swap order depending
// on which side of the page-ID tiebreak a 1-ulp accumulation
// difference lands them.
func comparePageHits(t *testing.T, label string, got, want []PageHit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, reference %d", label, len(got), len(want))
	}
	ref := make(map[provgraph.NodeID]PageHit, len(want))
	for _, h := range want {
		ref[h.Page] = h
	}
	for _, h := range got {
		w, ok := ref[h.Page]
		if !ok {
			t.Fatalf("%s: page %d not in reference results", label, h.Page)
		}
		if d := math.Abs(h.Score - w.Score); d > 1e-12 {
			t.Fatalf("%s: page %d score %g, reference %g (delta %g)", label, h.Page, h.Score, w.Score, d)
		}
		if d := math.Abs(h.ProvScore - w.ProvScore); d > 1e-12 {
			t.Fatalf("%s: page %d prov %g, reference %g", label, h.Page, h.ProvScore, w.ProvScore)
		}
		if h.TextScore != w.TextScore {
			t.Fatalf("%s: page %d text %g, reference %g", label, h.Page, h.TextScore, w.TextScore)
		}
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Page > b.Page) {
			t.Fatalf("%s: ranks %d-%d out of order: %+v before %+v", label, i-1, i, a, b)
		}
	}
}

// TestDenseSearchMatchesReference: the arena pipeline must rank
// identically to the map reference — same hits, same order, scores
// within fp accumulation noise — across randomized workloads, with and
// without HITS.
func TestDenseSearchMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		f := newFixture(t)
		buildRandomHistory(t, f, seed, 400)
		e := NewEngine(f.s, Options{})
		v := e.View()
		ctx := context.Background()
		for _, q := range []string{"wine", "garden flower", "ticket paris", "cheese"} {
			for _, hits := range []bool{false, true} {
				// k=0 compares the complete rankings; a k cut could split
				// an fp-tied group differently between the two pipelines.
				opts := []Option{WithHITS(hits), WithBudget(-1)}
				got, _, err := v.Search(ctx, q, 0, opts...)
				if err != nil {
					t.Fatal(err)
				}
				r, err := v.Begin(ctx, opts...)
				if err != nil {
					t.Fatal(err)
				}
				want := referenceContextualSearch(r, q, 0)
				r.Finish()
				comparePageHits(t, fmt.Sprintf("seed %d q=%q hits=%v", seed, q, hits), got, want)

				// The k cut must be exactly the prefix of the full ranking
				// (dense vs dense: bounded-heap selection vs full sort).
				cut, _, err := v.Search(ctx, q, 15, opts...)
				if err != nil {
					t.Fatal(err)
				}
				wantCut := got
				if len(wantCut) > 15 {
					wantCut = wantCut[:15]
				}
				if len(cut) != len(wantCut) {
					t.Fatalf("seed %d q=%q: k-cut %d hits, want %d", seed, q, len(cut), len(wantCut))
				}
				for i := range wantCut {
					if cut[i] != wantCut[i] {
						t.Fatalf("seed %d q=%q: k-cut rank %d = %+v, want %+v", seed, q, i, cut[i], wantCut[i])
					}
				}
			}
		}
	}
}

// TestDensePersonalizeMatchesReference: same suggestions, same order,
// weights within tolerance.
func TestDensePersonalizeMatchesReference(t *testing.T) {
	f := newFixture(t)
	buildRandomHistory(t, f, 7, 400)
	e := NewEngine(f.s, Options{})
	v := e.View()
	ctx := context.Background()
	for _, q := range []string{"wine", "garden", "museum train"} {
		// nTerms=0 compares complete rankings; tie-robust like
		// comparePageHits, since suggestion weights inherit the fp
		// accumulation noise of the contextual stage.
		got, _, err := v.Personalize(ctx, q, 0, WithBudget(-1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := v.Begin(ctx, WithBudget(-1))
		if err != nil {
			t.Fatal(err)
		}
		want := referencePersonalize(r, q, 0)
		r.Finish()
		if len(got) != len(want) {
			t.Fatalf("q=%q: %d suggestions, reference %d", q, len(got), len(want))
		}
		ref := make(map[string]float64, len(want))
		for _, s := range want {
			ref[s.Term] = s.Weight
		}
		for _, s := range got {
			w, ok := ref[s.Term]
			if !ok {
				t.Fatalf("q=%q: term %q not in reference", q, s.Term)
			}
			if d := math.Abs(s.Weight - w); d > 1e-12 {
				t.Fatalf("q=%q: term %q weight %g, reference %g", q, s.Term, s.Weight, w)
			}
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.Weight < b.Weight || (a.Weight == b.Weight && a.Term > b.Term) {
				t.Fatalf("q=%q: ranks %d-%d out of order", q, i-1, i)
			}
		}
	}
}

// TestDenseTimeContextTopKMatchesFullSort: the bounded-heap cut must be
// exactly the prefix of the full ranking.
func TestDenseTimeContextTopKMatchesFullSort(t *testing.T) {
	f := newFixture(t)
	buildRandomHistory(t, f, 13, 400)
	e := NewEngine(f.s, Options{})
	v := e.View()
	ctx := context.Background()
	full, _, err := v.TimeContextualSearch(ctx, "wine", "ticket", 0, WithBudget(-1))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 10} {
		cut, _, err := v.TimeContextualSearch(ctx, "wine", "ticket", k, WithBudget(-1))
		if err != nil {
			t.Fatal(err)
		}
		want := full
		if k < len(full) {
			want = full[:k]
		}
		if len(cut) != len(want) {
			t.Fatalf("k=%d: %d hits, want %d", k, len(cut), len(want))
		}
		for i := range want {
			if cut[i] != want[i] {
				t.Fatalf("k=%d: rank %d = %+v, want %+v", k, i, cut[i], want[i])
			}
		}
	}
}

// TestDenseSearchDeterministicAcrossRuns: repeated queries on one View
// must agree exactly (the arena, unlike the maps it replaced, has no
// iteration-order randomness — even where the expansion node cap bites).
func TestDenseSearchDeterministicAcrossRuns(t *testing.T) {
	f := newFixture(t)
	buildRandomHistory(t, f, 21, 500)
	e := NewEngine(f.s, Options{})
	v := e.View()
	ctx := context.Background()
	// MaxNodes 60 forces the admission cutoff to bite mid-expansion.
	first, _, err := v.Search(ctx, "wine cellar", 0, WithMaxNodes(60), WithBudget(-1))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		again, _, err := v.Search(ctx, "wine cellar", 0, WithMaxNodes(60), WithBudget(-1))
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("trial %d: %d hits vs %d", trial, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d: rank %d = %+v, want %+v", trial, i, again[i], first[i])
			}
		}
	}
}

// TestAncestorTermsCrossGenerationID: a node ID minted after a View
// was pinned (so above its snapshot's MaxNodeID) must yield an empty
// result, not an out-of-range panic in the dense traversal slabs.
func TestAncestorTermsCrossGenerationID(t *testing.T) {
	f := newFixture(t)
	buildRandomHistory(t, f, 41, 50)
	e := NewEngine(f.s, Options{})
	old := e.View()
	// Grow the store past the pinned snapshot.
	for i := 0; i < 20; i++ {
		f.visit(t, fmt.Sprintf("http://late.example/p%d", i), "late page", "", event.TransTyped)
	}
	newID := e.View().Snapshot().MaxNodeID()
	if newID <= old.Snapshot().MaxNodeID() {
		t.Fatal("store did not grow")
	}
	terms, _, err := old.AncestorTerms(context.Background(), newID)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 0 {
		t.Fatalf("terms for a node the snapshot cannot see: %v", terms)
	}
	if _, _, err := old.DownloadLineage(context.Background(), newID); err == nil {
		t.Fatal("lineage of an unseen node should fail with ErrNoSuchDownload")
	}
}

// TestArenaPoolRace hammers the arena pool from GOMAXPROCS goroutines
// while a writer keeps bumping generations (and the arena capacity
// class, as MaxNodeID crosses power-of-two boundaries). Run under
// -race this is the pool-safety proof; in any mode it checks that
// every query's results stay pinned to its View's generation.
func TestArenaPoolRace(t *testing.T) {
	f := newFixture(t)
	buildRandomHistory(t, f, 31, 300)
	e := NewEngine(f.s, Options{})
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		rng := rand.New(rand.NewSource(99))
		// Throttled: an unthrottled writer starves the readers with
		// snapshot-rebuild churn on small CI machines; one event per
		// millisecond is already far beyond real browsing.
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			u := fmt.Sprintf("http://w.example/bg-%d", i)
			f.s.Apply(&event.Event{
				Time: t0.Add(time.Duration(100000+i) * time.Second),
				Type: event.TypeVisit, Tab: 9, URL: u,
				Title:      vocab[rng.Intn(len(vocab))] + " background",
				Transition: event.TransLink,
			})
		}
	}()
	workers := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 30; i++ {
				v := e.View()
				gen := v.Generation()
				q := vocab[(w+i)%len(vocab)]
				_, meta, err := v.Search(ctx, q, 10, WithHITS(i%2 == 0))
				if err != nil {
					errs <- err
					return
				}
				if meta.Generation != gen {
					errs <- fmt.Errorf("worker %d: query ran at gen %d, View pinned %d", w, meta.Generation, gen)
					return
				}
				if _, _, err := v.Personalize(ctx, q, 5); err != nil {
					errs <- err
					return
				}
				if _, _, err := v.Sessions(ctx); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	writer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
