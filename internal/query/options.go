package query

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"browserprov/internal/provgraph"
)

// DefaultBudget is the paper's 200 ms interactive bound (§4).
const DefaultBudget = 200 * time.Millisecond

// Sentinel errors for the query API. All errors returned by View
// queries (and the PQL evaluator) unwrap to one of these, so callers
// dispatch with errors.Is instead of string matching.
var (
	// ErrNoSuchDownload reports a lineage query for a save path or node
	// that is not a download in the queried snapshot.
	ErrNoSuchDownload = errors.New("no such download")
	// ErrClosed reports a query against a closed history. It is the
	// store layer's sentinel, re-exported: a pin failure deep in the
	// store and a facade-level closed check surface as the same error.
	ErrClosed = provgraph.ErrClosed
	// ErrBadQuery reports an unparseable or malformed query (PQL syntax
	// errors wrap it).
	ErrBadQuery = errors.New("bad query")
	// ErrNoSuchGeneration reports a ViewAt request for a generation the
	// engine no longer (or never) retains.
	ErrNoSuchGeneration = errors.New("generation not retained")
)

// NoDownloadError is the concrete error behind ErrNoSuchDownload,
// carrying what was looked up; errors.Is(err, ErrNoSuchDownload) holds.
type NoDownloadError struct {
	// Path is the save path (or PQL argument) that matched no download.
	Path string
}

func (e *NoDownloadError) Error() string {
	return fmt.Sprintf("query: no download %q: %v", e.Path, ErrNoSuchDownload)
}

func (e *NoDownloadError) Unwrap() error { return ErrNoSuchDownload }

// Options tunes query behaviour. The zero value gives the defaults used
// in the experiments. An engine carries a base Options; every query can
// override any knob per call with the With* functional options — the
// override resolves against the same shared snapshot and text index, no
// engine rebuild or re-index.
type Options struct {
	// Budget bounds each query's wall-clock time. 0 means DefaultBudget;
	// negative means unlimited. The effective deadline of a query is the
	// earlier of this budget and the context's deadline.
	Budget time.Duration
	// Decay is the per-hop weight decay of neighborhood expansion.
	// 0 means 0.5.
	Decay float64
	// MaxDepth bounds expansion depth. 0 means 3.
	MaxDepth int
	// MaxNodes bounds the expanded neighborhood size. 0 means 5000.
	MaxNodes int
	// UseHITS additionally runs HITS over the expanded neighborhood and
	// blends authority scores into the ranking.
	UseHITS bool
	// RawGraph routes expansion over the raw snapshot instead of the
	// redirect-splicing personalisation lens (§3.2), which is the
	// default for contextual/personalised search.
	RawGraph bool
	// RecognizableVisits is the visit-count threshold for "a page the
	// user is likely to recognize" in lineage queries (§2.4). 0 means 3.
	RecognizableVisits int
	// Parallelism is the worker count for intra-query frontier expansion
	// and HITS. 0 means GOMAXPROCS; 1 forces serial; results are
	// identical at any setting.
	Parallelism int
}

func (o Options) budget() time.Duration {
	switch {
	case o.Budget == 0:
		return DefaultBudget
	case o.Budget < 0:
		return 365 * 24 * time.Hour
	default:
		return o.Budget
	}
}

func (o Options) decay() float64 {
	if o.Decay == 0 {
		return 0.5
	}
	return o.Decay
}

func (o Options) maxDepth() int {
	if o.MaxDepth == 0 {
		return 3
	}
	return o.MaxDepth
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return 5000
	}
	return o.MaxNodes
}

func (o Options) parallelism() int {
	if o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

func (o Options) recognizable() int {
	if o.RecognizableVisits == 0 {
		return 3
	}
	return o.RecognizableVisits
}

// Option is a per-call override of one Options knob. Pass any number to
// a View query; they apply on top of the engine's base Options for that
// call only.
type Option func(*Options)

// WithBudget bounds the query's wall-clock time (0 = DefaultBudget,
// negative = unlimited). The effective deadline is min(context
// deadline, budget).
func WithBudget(d time.Duration) Option { return func(o *Options) { o.Budget = d } }

// WithDecay sets the per-hop weight decay of neighborhood expansion.
func WithDecay(d float64) Option { return func(o *Options) { o.Decay = d } }

// WithDepth bounds neighborhood-expansion depth for this call.
func WithDepth(depth int) Option { return func(o *Options) { o.MaxDepth = depth } }

// WithMaxNodes bounds the expanded neighborhood size for this call.
func WithMaxNodes(n int) Option { return func(o *Options) { o.MaxNodes = n } }

// WithHITS toggles the HITS authority blend over the expanded
// neighborhood.
func WithHITS(on bool) Option { return func(o *Options) { o.UseHITS = on } }

// WithRawGraph routes traversal over the raw snapshot instead of the
// redirect-splicing lens.
func WithRawGraph(on bool) Option { return func(o *Options) { o.RawGraph = on } }

// WithRecognizableVisits sets the §2.4 "likely to recognize"
// visit-count threshold for this call.
func WithRecognizableVisits(n int) Option {
	return func(o *Options) { o.RecognizableVisits = n }
}

// WithParallelism sets the worker count for intra-query frontier
// expansion and HITS (0 = GOMAXPROCS, 1 = serial). Results are
// identical at any setting; only wall-clock changes.
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }
