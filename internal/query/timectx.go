package query

import (
	"context"
	"sort"
	"time"

	"browserprov/internal/provgraph"
	"browserprov/internal/topk"
)

// TimeHit is one time-contextual search result: a page matching the
// query whose visits were on display together with visits of pages
// matching the anchor.
type TimeHit struct {
	Page  provgraph.NodeID
	URL   string
	Title string
	// Overlap is the accumulated co-display evidence in seconds
	// (interval overlap against the anchor timeline, which is padded by
	// sessionSlack so near-misses within the same sitting still count).
	Overlap float64
	// TextScore is the page's textual match against the primary query.
	TextScore float64
	// Score blends both.
	Score float64
}

// sessionSlack pads anchor display intervals: visits that do not
// strictly overlap but fall within this window of each other are still
// associated — "pages viewed within a similar time span" (§2.3).
// Blanc-Brude & Scapin: users recall events associated with documents,
// not exact timestamps.
const sessionSlack = 30 * time.Minute

// assumedDwell bounds the display interval of a visit whose close was
// never observed. Treating it as open forever would associate it with
// all later history (§3.2's "every page is always open" failure mode).
const assumedDwell = 30 * time.Minute

// maxDwell caps any visit's display interval for association purposes.
// A tab left open in the background for days is technically co-displayed
// with everything that follows, but the user's *sitting* — the thing
// they remember (§2.3) — is bounded; without the cap, one stale tab
// associates with all later history.
const maxDwell = 4 * time.Hour

// span is a half-open display interval.
type span struct{ start, end int64 } // unix micros

// TimeContextualSearch implements §2.3: "wine associated with plane
// tickets". Pages matching q are ranked by how much their visits
// overlapped in time with visits of pages matching anchor.
//
// The anchor visits' padded intervals are merged into a sorted timeline,
// so each query visit costs one binary search — the whole query is
// O((|q visits| + |anchor visits|) log |anchor visits|), comfortably
// inside the 200 ms budget at the paper's 25k-node scale.
func (v *View) TimeContextualSearch(ctx context.Context, q, anchor string, k int, opts ...Option) ([]TimeHit, Meta, error) {
	r, err := v.Begin(ctx, opts...)
	if err != nil {
		return nil, Meta{}, err
	}
	if r.Stop() {
		return nil, r.Finish(), nil
	}
	sn := r.Snapshot()

	qPages := r.matchPages(q, 200)
	aPages := r.matchPages(anchor, 200)

	timeline := anchorTimeline(sn, aPages)

	var hits []TimeHit
	for _, qp := range qPages {
		if r.Stop() {
			break
		}
		overlap := 0.0
		for _, vid := range sn.VisitsOfPage(qp.page) {
			n, ok := sn.NodeByID(vid)
			if !ok {
				continue
			}
			overlap += timelineOverlap(timeline, visitSpan(n, 0))
		}
		if overlap <= 0 {
			continue
		}
		n, _ := sn.NodeByID(qp.page)
		hits = append(hits, TimeHit{
			Page: qp.page, URL: n.URL, Title: n.Title,
			Overlap: overlap, TextScore: qp.score,
			Score: qp.score * (1 + overlap),
		})
	}
	hits = topk.Select(hits, k, func(a, b TimeHit) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Page < b.Page
	})
	return hits, r.Finish(), nil
}

// visitSpan returns a visit's display interval padded by pad on both
// sides, with assumedDwell substituted for a missing close.
func visitSpan(n provgraph.Node, pad time.Duration) span {
	open := n.Open
	close := n.Close
	if close.IsZero() || close.Before(open) {
		close = open.Add(assumedDwell)
	}
	if close.Sub(open) > maxDwell {
		close = open.Add(maxDwell)
	}
	return span{
		start: open.Add(-pad).UnixMicro(),
		end:   close.Add(pad).UnixMicro(),
	}
}

// anchorTimeline collects all anchor visits' intervals, padded by
// sessionSlack, merged and sorted by start.
func anchorTimeline(sn *provgraph.Snapshot, aPages []pageMatch) []span {
	var spans []span
	for _, ap := range aPages {
		for _, v := range sn.VisitsOfPage(ap.page) {
			n, ok := sn.NodeByID(v)
			if !ok {
				continue
			}
			spans = append(spans, visitSpan(n, sessionSlack))
		}
	}
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	merged := spans[:1]
	for _, s := range spans[1:] {
		last := &merged[len(merged)-1]
		if s.start <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// timelineOverlap returns the overlap, in seconds, between v and the
// merged timeline.
func timelineOverlap(timeline []span, v span) float64 {
	if len(timeline) == 0 || v.end <= v.start {
		return 0
	}
	// First span that could overlap: the one before the first span whose
	// start exceeds v.start, and everything after until starts pass
	// v.end.
	i := sort.Search(len(timeline), func(i int) bool { return timeline[i].end > v.start })
	total := int64(0)
	for ; i < len(timeline) && timeline[i].start < v.end; i++ {
		lo := max64(timeline[i].start, v.start)
		hi := min64(timeline[i].end, v.end)
		if hi > lo {
			total += hi - lo
		}
	}
	return float64(total) / 1e6
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

type pageMatch struct {
	page  provgraph.NodeID
	score float64
}

// matchPages runs a textual search restricted to page nodes of the
// run's snapshot.
func (r *Run) matchPages(q string, limit int) []pageMatch {
	sn := r.Snapshot()
	var out []pageMatch
	for _, h := range r.searchIndex(q, 0) {
		id := provgraph.NodeID(h.Doc)
		if n, ok := sn.NodeByID(id); ok && n.Kind == provgraph.KindPage {
			out = append(out, pageMatch{page: id, score: h.Score})
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}
