package query

import (
	"errors"
	"testing"
)

func TestProtectConvertsPanicToError(t *testing.T) {
	err := Protect(func() error { panic("kernel bug") })
	if !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("err = %v, want ErrQueryPanic", err)
	}
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("clean fn returned %v", err)
	}
	want := errors.New("ordinary")
	if err := Protect(func() error { return want }); err != want {
		t.Fatalf("err = %v, want pass-through", err)
	}
}
