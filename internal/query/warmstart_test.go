package query

import (
	"context"
	"reflect"
	"testing"

	"browserprov/internal/event"
	"browserprov/internal/provgraph"
)

// buildWarmHistory seeds a store with enough textual variety that a
// missing or corrupt index would visibly change results.
func buildWarmHistory(t *testing.T, f *fixture) {
	t.Helper()
	buildRosebudHistory(t, f)
	for i := 0; i < 40; i++ {
		f.visit(t, "http://films.example/reel-"+string(rune('a'+i%26)),
			"Film reel review", "", event.TransTyped)
	}
}

// TestEngineWarmStart: an engine built over a store recovered from a
// columnar checkpoint must answer queries identically to a cold-built
// one — and must actually warm-start, claiming the persisted postings
// at the checkpointed watermark instead of retokenizing from node 0.
func TestEngineWarmStart(t *testing.T) {
	f := newFixture(t)
	buildWarmHistory(t, f)
	cold := NewEngine(f.s, Options{})
	ctx := context.Background()
	coldHits, _, err := cold.View().Search(ctx, "rosebud citizen", 10)
	if err != nil {
		t.Fatal(err)
	}
	coldText, _, err := cold.View().TextualSearch(ctx, "film reel", 10)
	if err != nil {
		t.Fatal(err)
	}
	maxID := cold.Snapshot().MaxNodeID()
	// The checkpoint invokes the engine's registered text source.
	if err := f.s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	dir := f.dir
	if err := f.s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := provgraph.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	t.Run("postings-recovered", func(t *testing.T) {
		// White-box: the store surfaced the persisted postings at the
		// full watermark (the index was caught up past maxID when the
		// checkpoint ran, so the clamp lands on the capture's maxID).
		ix, wm, ok := re.RecoveredTextIndex()
		if !ok {
			t.Fatal("no recovered text index after v2 open")
		}
		if wm != maxID {
			t.Fatalf("recovered watermark %d, want %d", wm, maxID)
		}
		if ix.NumDocs() == 0 {
			t.Fatal("recovered index is empty")
		}
		// Consumed: a second engine must rebuild, not double-claim.
		if _, _, ok := re.RecoveredTextIndex(); ok {
			t.Fatal("recovered index handed out twice")
		}
	})

	t.Run("warm-engine-equivalent", func(t *testing.T) {
		// A fresh open so the postings are unconsumed for NewEngine.
		re2, err := provgraph.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer re2.Close()
		warm := NewEngine(re2, Options{})
		if warm.lastIndexed != maxID {
			t.Fatalf("engine warm-started at %d, want watermark %d", warm.lastIndexed, maxID)
		}
		warmHits, _, err := warm.View().Search(ctx, "rosebud citizen", 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warmHits, coldHits) {
			t.Fatalf("warm search differs:\ncold %+v\nwarm %+v", coldHits, warmHits)
		}
		warmText, _, err := warm.View().TextualSearch(ctx, "film reel", 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warmText, coldText) {
			t.Fatalf("warm textual search differs")
		}
		// Growth past the checkpoint is indexed incrementally from the
		// watermark.
		if err := re2.Apply(&event.Event{Time: f.tick(), Type: event.TypeVisit, Tab: 1,
			URL: "http://fresh.example/", Title: "Postcheckpoint growth page",
			Transition: event.TransTyped}); err != nil {
			t.Fatal(err)
		}
		grown, _, err := warm.View().TextualSearch(ctx, "postcheckpoint growth", 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(grown) == 0 {
			t.Fatal("node past the warm-start watermark never indexed")
		}
	})
}

// TestWarmStartWatermarkClamped: postings saved by a checkpoint are cut
// at the checkpoint's own node watermark even when the engine has
// indexed further — a recovered index must never run ahead of the
// recovered graph.
func TestWarmStartWatermarkClamped(t *testing.T) {
	f := newFixture(t)
	buildWarmHistory(t, f)
	eng := NewEngine(f.s, Options{})

	// Hold the dump open and index new docs mid-dump: the source must
	// clamp to the capture's maxID, not the engine's live watermark.
	captureMax := eng.Snapshot().MaxNodeID()
	payload, wm := eng.checkpointText(captureMax - 5)
	if wm != captureMax-5 {
		t.Fatalf("watermark %d, want clamp at %d", wm, captureMax-5)
	}
	if payload == nil {
		t.Fatal("no payload")
	}
	// And the other side of the clamp: a checkpoint whose capture is
	// ahead of what the engine indexed saves only the indexed prefix.
	if _, wm := eng.checkpointText(captureMax + 100); wm != eng.lastIndexed {
		t.Fatalf("watermark %d ran past indexed %d", wm, eng.lastIndexed)
	}
}
