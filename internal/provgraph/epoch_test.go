package provgraph

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"browserprov/internal/event"
)

// snapMustMatchStore compares the snapshot's whole read surface against
// the live store's.
func snapMustMatchStore(t *testing.T, s *Store, sn *Snapshot) {
	t.Helper()
	ids := s.AllNodeIDs()
	for _, id := range ids {
		want, _ := s.NodeByID(id)
		got, ok := sn.NodeByID(id)
		if !ok {
			t.Fatalf("node %d missing from snapshot", id)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d = %+v, want %+v", id, got, want)
		}
		if gotOut, wantOut := sn.Out(id), s.Out(id); !sameIDs(gotOut, wantOut) {
			t.Fatalf("Out(%d) = %v, want %v", id, gotOut, wantOut)
		}
		if gotIn, wantIn := sn.In(id), s.In(id); !sameIDs(gotIn, wantIn) {
			t.Fatalf("In(%d) = %v, want %v", id, gotIn, wantIn)
		}
		if gotE, wantE := sn.OutEdges(id), s.OutEdges(id); !sameEdges(gotE, wantE) {
			t.Fatalf("OutEdges(%d) = %v, want %v", id, gotE, wantE)
		}
		if gotE, wantE := sn.InEdges(id), s.InEdges(id); !sameEdges(gotE, wantE) {
			t.Fatalf("InEdges(%d) = %v, want %v", id, gotE, wantE)
		}
		if want.Kind == KindPage {
			if gotV, wantV := sn.VisitsOfPage(id), s.VisitsOfPage(id); !sameIDs(gotV, wantV) {
				t.Fatalf("VisitsOfPage(%d) = %v, want %v", id, gotV, wantV)
			}
			if sn.VisitCount(id) != s.VisitCount(id) {
				t.Fatalf("VisitCount(%d) = %d, want %d", id, sn.VisitCount(id), s.VisitCount(id))
			}
			if p, ok := sn.PageByURL(want.URL); !ok || p.ID != id {
				t.Fatalf("PageByURL(%q) = %+v, %v", want.URL, p, ok)
			}
		}
	}
	if got, want := sn.Downloads(), s.Downloads(); !sameIDs(got, want) {
		t.Fatalf("Downloads = %v, want %v", got, want)
	}
	lo, hi := time.Time{}, time.Unix(1<<40, 0)
	if got, want := sn.OpenBetween(lo, hi), s.OpenBetween(lo, hi); !sameIDs(got, want) {
		t.Fatalf("OpenBetween = %v, want %v", got, want)
	}
	st := s.Stats()
	if sn.NumNodes() != st.Nodes || sn.NumEdges() != st.Edges {
		t.Fatalf("snapshot counts = (%d, %d), want (%d, %d)", sn.NumNodes(), sn.NumEdges(), st.Nodes, st.Edges)
	}
}

func sameIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameEdges(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To || a[i].Kind != b[i].Kind || !a[i].At.Equal(b[i].At) {
			return false
		}
	}
	return true
}

// feedMixed applies a workload with every node kind, cross-tab
// referrers, redirects, bookmarks, searches and downloads.
func feedMixed(t *testing.T, s *Store, n int, base time.Time) {
	t.Helper()
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		url := fmt.Sprintf("http://site%d.example/p%d", i%7, i%50)
		mustApply(t, s, visit(1+i%3, url, fmt.Sprintf("Page %d", i%50), "", event.TransTyped, at))
		switch i % 11 {
		case 2:
			mustApply(t, s, visit(1+i%3, url+"/next", "Next", url, event.TransLink, at.Add(time.Second)))
		case 3:
			mustApply(t, s, &event.Event{Time: at.Add(2 * time.Second), Type: event.TypeSearch,
				Tab: 1 + i%3, Terms: fmt.Sprintf("term %d", i%13), URL: "http://search.example/?q=x"})
			mustApply(t, s, visit(1+i%3, "http://search.example/?q=x", "Results", url, event.TransSearchResult, at.Add(3*time.Second)))
		case 5:
			mustApply(t, s, &event.Event{Time: at.Add(2 * time.Second), Type: event.TypeDownload,
				Tab: 1 + i%3, URL: url + "/file.zip", SavePath: fmt.Sprintf("/dl/file-%d.zip", i), ContentType: "application/zip"})
		case 7:
			mustApply(t, s, &event.Event{Time: at.Add(2 * time.Second), Type: event.TypeBookmarkAdd,
				Tab: 1 + i%3, URL: url, Title: "Bookmark"})
		case 8:
			// Bookmark click on the previous iteration's bookmark: its
			// in-edges arrive as [origin visit (high ID), bookmark (low
			// ID)] — insertion order that From-sorted packing would
			// scramble, which the order-sensitive snapshot comparison
			// must catch.
			prev := fmt.Sprintf("http://site%d.example/p%d", (i-1)%7, (i-1)%50)
			mustApply(t, s, visit(1+i%3, prev, "Revisit", "", event.TransBookmark, at.Add(2*time.Second)))
		case 9:
			mustApply(t, s, visit(1+i%3, url+"/redir", "Hop", url, event.TransRedirectTemporary, at.Add(time.Second)))
		}
	}
}

func TestSnapshotMatchesStore(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	feedMixed(t, s, 60, t0)
	snapMustMatchStore(t, s, s.Snapshot())
}

// sealedMaxNow reads the sealed high-water mark under the lock (the
// reseal publish runs on a background goroutine, so unlocked reads
// would race it).
func (s *Store) sealedMaxNow() NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sealedMax()
}

// TestSnapshotAcrossSeal forces a reseal (tail > sealThresholdMin) and
// checks equivalence before, across and after the boundary.
func TestSnapshotAcrossSeal(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	feedMixed(t, s, 400, t0) // ~>1100 nodes: the write path schedules a seal
	sn1 := s.Snapshot()
	snapMustMatchStore(t, s, sn1)
	s.WaitReseal()
	if s.sealedMaxNow() == 0 {
		t.Fatal("expected a sealed epoch after large build")
	}
	// Small tail on top of the seal: dirty sealed nodes + new nodes.
	feedMixed(t, s, 40, t0.Add(500*time.Minute))
	sn2 := s.Snapshot()
	snapMustMatchStore(t, s, sn2)
	// Grow past the threshold again: second reseal.
	feedMixed(t, s, 500, t0.Add(1000*time.Minute))
	s.WaitReseal()
	sn3 := s.Snapshot()
	snapMustMatchStore(t, s, sn3)
	if sn1 == sn2 || sn2 == sn3 {
		t.Fatal("snapshots across generations must be distinct")
	}
}

func TestSnapshotCachingAndGeneration(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s, visit(1, "http://a.example/", "A", "", event.TransTyped, t0))
	g1 := s.Generation()
	sn1 := s.Snapshot()
	if sn2 := s.Snapshot(); sn2 != sn1 {
		t.Fatal("unchanged store must return the cached snapshot")
	}
	mustApply(t, s, visit(1, "http://b.example/", "B", "", event.TransTyped, t0.Add(time.Minute)))
	if s.Generation() == g1 {
		t.Fatal("generation must advance on mutation")
	}
	sn3 := s.Snapshot()
	if sn3 == sn1 {
		t.Fatal("stale snapshot returned after mutation")
	}
	if sn3.Generation() == sn1.Generation() {
		t.Fatal("snapshot generations must differ")
	}
}

// TestSnapshotImmutableUnderWrites pins the point-in-time contract: a
// snapshot keeps answering from its epoch while the store moves on.
func TestSnapshotImmutableUnderWrites(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://b.example/", "B", "http://a.example/", event.TransLink, t0.Add(time.Minute)),
	)
	sn := s.Snapshot()
	a, _ := s.PageByURL("http://a.example/")
	av := s.VisitsOfPage(a.ID)[0]
	outBefore := append([]NodeID(nil), sn.Out(av)...)
	nodesBefore := sn.NumNodes()

	// The store grows: a new visit descends from a's visit (appending to
	// its out-adjacency) and a's visit gets closed.
	mustApply(t, s,
		visit(1, "http://c.example/", "C", "http://a.example/", event.TransLink, t0.Add(2*time.Minute)),
	)
	if got := sn.Out(av); !sameIDs(got, outBefore) {
		t.Fatalf("snapshot Out mutated: %v -> %v", outBefore, got)
	}
	if sn.NumNodes() != nodesBefore {
		t.Fatal("snapshot node count mutated")
	}
	if _, ok := sn.PageByURL("http://c.example/"); ok {
		t.Fatal("snapshot sees a page created after it was taken")
	}
	// The next snapshot sees everything.
	sn2 := s.Snapshot()
	if _, ok := sn2.PageByURL("http://c.example/"); !ok {
		t.Fatal("fresh snapshot missing new page")
	}
	snapMustMatchStore(t, s, sn2)
}

// TestSnapshotSealedNodeMutation covers the dirty-node overlay: closing
// a sealed visit must show up in the next snapshot.
func TestSnapshotSealedNodeMutation(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	feedMixed(t, s, 400, t0)
	s.Snapshot()
	s.WaitReseal() // the write path scheduled a background seal
	if s.sealedMaxNow() == 0 {
		t.Fatal("expected seal")
	}
	// Tab 1's current visit is sealed; a new navigation closes it.
	curBefore := s.tabCurOf(1)
	mustApply(t, s, visit(1, "http://closer.example/", "Closer", "", event.TransTyped, t0.Add(600*time.Minute)))
	sn := s.Snapshot()
	n, ok := sn.NodeByID(curBefore)
	if !ok {
		t.Fatalf("sealed node %d missing", curBefore)
	}
	if n.Close.IsZero() {
		t.Fatal("close of sealed visit not visible in snapshot")
	}
	snapMustMatchStore(t, s, sn)
}

// tabCurOf exposes the current visit of a tab for tests.
func (s *Store) tabCurOf(tab int) NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tabCur[tab]
}

func TestSnapshotTermReissueShadowsSealed(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s, visit(1, "http://a.example/", "A", "", event.TransTyped, t0))
	mustApply(t, s, &event.Event{Time: t0.Add(time.Minute), Type: event.TypeSearch, Tab: 1,
		Terms: "rosebud", URL: "http://search.example/?q=rosebud"})
	sn1 := s.Snapshot()
	first, ok := sn1.TermNode("rosebud")
	if !ok || first.VisitSeq != 1 {
		t.Fatalf("first term instance = %+v, %v", first, ok)
	}
	mustApply(t, s, &event.Event{Time: t0.Add(2 * time.Minute), Type: event.TypeSearch, Tab: 1,
		Terms: "rosebud", URL: "http://search.example/?q=rosebud"})
	sn2 := s.Snapshot()
	second, ok := sn2.TermNode("rosebud")
	if !ok || second.VisitSeq != 2 || second.ID == first.ID {
		t.Fatalf("latest term instance = %+v, %v", second, ok)
	}
	// The old snapshot still answers with its own epoch's instance.
	if again, _ := sn1.TermNode("rosebud"); again.ID != first.ID {
		t.Fatal("old snapshot's term mapping changed")
	}
}

func TestSnapshotDownloadBySavePath(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s, visit(1, "http://a.example/", "A", "", event.TransTyped, t0))
	mustApply(t, s, &event.Event{Time: t0.Add(time.Minute), Type: event.TypeDownload, Tab: 1,
		URL: "http://a.example/x.zip", SavePath: "/dl/x.zip", ContentType: "application/zip"})
	if d, ok := s.DownloadBySavePath("/dl/x.zip"); !ok || d.Kind != KindDownload {
		t.Fatalf("store lookup = %+v, %v", d, ok)
	}
	if d, ok := s.Snapshot().DownloadBySavePath("/dl/x.zip"); !ok || d.URL != "http://a.example/x.zip" {
		t.Fatalf("snapshot lookup = %+v, %v", d, ok)
	}
	if _, ok := s.Snapshot().DownloadBySavePath("/dl/missing"); ok {
		t.Fatal("phantom download")
	}
}

func TestSnapshotNodesSince(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s, visit(1, "http://a.example/", "A", "", event.TransTyped, t0))
	sn := s.Snapshot()
	watermark := sn.MaxNodeID()
	mustApply(t, s,
		visit(1, "http://b.example/", "B", "", event.TransTyped, t0.Add(time.Minute)),
		visit(1, "http://c.example/", "C", "", event.TransTyped, t0.Add(2*time.Minute)),
	)
	var ids []NodeID
	s.Snapshot().NodesSince(watermark, func(n Node) bool {
		ids = append(ids, n.ID)
		return true
	})
	if len(ids) != 4 { // two pages + two visits
		t.Fatalf("NodesSince returned %v, want 4 nodes", ids)
	}
	for _, id := range ids {
		if id <= watermark {
			t.Fatalf("NodesSince leaked id %d <= watermark %d", id, watermark)
		}
	}
	// Store-level variant agrees.
	if nodes := s.NodesSince(watermark); len(nodes) != 4 {
		t.Fatalf("Store.NodesSince returned %d nodes, want 4", len(nodes))
	}
}

func TestSnapshotAfterExpire(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	// Expirable content: one-visit tabs with no download/bookmark
	// descendants, so retention is free to drop them.
	for i := 0; i < 100; i++ {
		mustApply(t, s, visit(50+i, fmt.Sprintf("http://old%d.example/", i), "Old", "",
			event.TransTyped, t0.Add(time.Duration(i)*time.Minute)))
	}
	feedMixed(t, s, 300, t0)
	old := s.Snapshot()
	cutoff := t0.Add(500 * time.Minute)
	feedMixed(t, s, 30, cutoff.Add(time.Hour))
	removed, err := s.ExpireBefore(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if removed < 100 {
		t.Fatalf("removed = %d, want >= 100 (the old one-visit tabs)", removed)
	}
	sn := s.Snapshot()
	snapMustMatchStore(t, s, sn)
	// The pre-expire snapshot still serves its own epoch.
	if _, ok := old.PageByURL("http://old0.example/"); !ok {
		t.Fatal("pre-expire snapshot lost its view")
	}
	if _, ok := sn.PageByURL("http://old0.example/"); ok {
		t.Fatal("post-expire snapshot still shows expired page")
	}
}

func TestSnapshotVersionEdgesMode(t *testing.T) {
	s, err := OpenWith(t.TempDir(), Options{Mode: VersionEdges})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	feedMixed(t, s, 80, t0)
	sn := s.Snapshot()
	snapMustMatchStore(t, s, sn)
	if sn.Mode() != VersionEdges {
		t.Fatalf("mode = %v", sn.Mode())
	}
}

// TestSnapshotLensMatchesStoreLens checks the per-epoch lens against
// the store's per-query lens.
func TestSnapshotLensMatchesStoreLens(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	feedMixed(t, s, 150, t0)
	sn := s.Snapshot()
	sl := sn.Lens()
	ll := s.NewLens()
	for _, id := range s.AllNodeIDs() {
		if got, want := sl.Out(id), ll.Out(id); !sameIDs(got, want) {
			t.Fatalf("lens Out(%d) = %v, want %v", id, got, want)
		}
		if got, want := sl.In(id), ll.In(id); !sameIDs(got, want) {
			t.Fatalf("lens In(%d) = %v, want %v", id, got, want)
		}
	}
	if sn.Lens() != sl {
		t.Fatal("lens must be cached per snapshot")
	}
}
