package provgraph

import (
	"errors"
	"fmt"
)

// ---- read replicas: the follower-side apply path ----
//
// A replica store is a normal store whose only writer is a replication
// stream: it replays WAL records shipped from a leader, at the leader's
// LSNs, into its own journal and graph. Everything else — checkpoints,
// epoch snapshots, generation-pinned Views, crash recovery — works
// unchanged, because a replica IS just a store whose WAL happens to be
// written by ReplicateRecord instead of Apply. In particular the
// replica's own WAL is its applied-LSN high-water mark: a follower that
// crashes mid-replay reopens, replays its local journal, and resumes
// the stream from exactly NextLSN — no separate progress file to keep
// in step with the log.

// ErrReplica reports a direct mutation attempted on a replica store.
// Replicas apply records only through ReplicateRecord; local writes
// would fork the LSN sequence from the leader's.
var ErrReplica = errors.New("provgraph: store is a read-only replica")

// ErrReplicaGap reports a replicated record whose LSN is past the
// replica's next expected LSN: records were lost in transit. The
// follower must re-request the stream from its NextLSN.
var ErrReplicaGap = errors.New("provgraph: gap in replicated wal stream")

// IsReplica reports whether the store was opened in replica mode.
func (s *Store) IsReplica() bool { return s.replica }

// ReplicateRecord applies one WAL record shipped from a leader: payload
// is the record exactly as the leader logged it (event bytes, or a
// dedup-keyed wrapper), lsn the leader's LSN for it. The record is
// logged to the replica's own journal at the same LSN, then folded into
// the graph — the same two steps Apply performs, driven by the wire
// instead of a caller's event.
//
// Idempotent by LSN: a record at an LSN the replica has already applied
// (duplicated stream chunk, resumed stream overlapping the high-water
// mark) reports applied=false and changes nothing. A record past the
// next expected LSN fails with ErrReplicaGap and changes nothing.
func (s *Store) ReplicateRecord(lsn uint64, payload []byte) (applied bool, err error) {
	// Decode before touching any state: a malformed record must not be
	// logged, or recovery would choke on the same bytes.
	id, ev, err := decodeWALRecord(payload)
	if err != nil {
		return false, fmt.Errorf("provgraph: replicated record at lsn %d: %w", lsn, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false, ErrClosed
	}
	next := s.j.NextLSN()
	if lsn < next {
		return false, nil // already applied; duplicate delivery
	}
	if lsn > next {
		return false, fmt.Errorf("%w: got lsn %d, want %d", ErrReplicaGap, lsn, next)
	}
	if err := s.j.Log(payload); err != nil {
		return false, err
	}
	s.applyEvent(ev)
	if id != "" {
		s.dedup.add(id)
	}
	s.maybeReseal()
	return true, nil
}

// ReplicationInfo is a consistent snapshot of the journal coordinates
// replication works in, for both sides: a leader serves checkpoints and
// streams from these, a follower resumes and reports lag from them.
type ReplicationInfo struct {
	// Gen is the current checkpoint generation (0 if none).
	Gen uint64
	// StartLSN is the first LSN not covered by the checkpoint — where a
	// bootstrap from this checkpoint must start streaming.
	StartLSN uint64
	// NextLSN is the LSN the next logged record will receive; records
	// below it are applied.
	NextLSN uint64
	// LastCRC is the frame CRC of the newest WAL entry (valid only if
	// HaveCRC): the content fingerprint a resuming stream verifies.
	LastCRC uint32
	HaveCRC bool
	// WALPath and SnapshotPath locate the live journal files for the
	// replication server's tailing reader and checkpoint sender.
	WALPath      string
	SnapshotPath string
}

// ReplicationInfo returns the store's current replication coordinates.
func (s *Store) ReplicationInfo() ReplicationInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	crc, have := s.j.LastFrameCRC()
	return ReplicationInfo{
		Gen:          s.j.Gen(),
		StartLSN:     s.j.StartLSN(),
		NextLSN:      s.j.NextLSN(),
		LastCRC:      crc,
		HaveCRC:      have,
		WALPath:      s.j.WALPath(),
		SnapshotPath: s.j.SnapshotPath(),
	}
}

// NextLSN returns the next LSN the store will log. On a replica this is
// the applied-LSN high-water mark + 1 — the stream resume position.
func (s *Store) NextLSN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.j.NextLSN()
}

// FlushWAL pushes buffered WAL entries to the OS (no fsync) so a
// tailing replication reader can see them. The leader's stream server
// calls this once per poll; durability semantics are unchanged.
func (s *Store) FlushWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.j.Flush()
}
