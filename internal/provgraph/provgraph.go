// Package provgraph implements the paper's primary contribution: a
// single, homogeneous provenance graph store for every kind of browser
// history object (§3.4).
//
// Pages, page-visit instances, bookmarks, downloads, search terms and
// form entries are all nodes of one graph; link traversals, typed
// navigations, bookmark clicks, redirects, embedded content, downloads
// and search descents are all typed, time-stamped edges. Cycles in the
// page/link structure are broken by versioning: each visit is a new
// instance node, and every edge points from an earlier instance to a
// strictly later one, so the graph is acyclic by construction (§3.1).
// Visits carry open and close timestamps (§3.2), enabling the
// time-overlap relationships the paper's time-contextual search needs.
//
// The store journals raw browsing events (so the WAL doubles as a full
// activity log) and checkpoints the materialised graph through
// internal/storage. It implements graph.Graph, so every algorithm in
// internal/graph runs on it directly.
package provgraph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"browserprov/internal/event"
	"browserprov/internal/graph"
	"browserprov/internal/storage"
	"browserprov/internal/textindex"
)

// NodeID aliases graph.NodeID; provenance node IDs are dense from 1.
type NodeID = graph.NodeID

// NodeKind enumerates the heterogeneous history objects stored as
// homogeneous graph nodes (§3.3).
type NodeKind int

const (
	// KindPage is a page identity: one node per distinct URL. Page nodes
	// anchor their visit instances but do not participate in provenance
	// edges themselves (versioning happens at the visit level).
	KindPage NodeKind = iota + 1
	// KindVisit is one page-visit instance (a version of a page, §3.1).
	KindVisit
	// KindBookmark is a bookmark object.
	KindBookmark
	// KindDownload is a downloaded file.
	KindDownload
	// KindSearchTerm is a user-issued search query string (§3.3).
	KindSearchTerm
	// KindFormEntry is a submitted form's content (§3.3).
	KindFormEntry
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindPage:
		return "page"
	case KindVisit:
		return "visit"
	case KindBookmark:
		return "bookmark"
	case KindDownload:
		return "download"
	case KindSearchTerm:
		return "search-term"
	case KindFormEntry:
		return "form-entry"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// EdgeKind enumerates provenance relationships. Navigation kinds reuse
// the event.Transition vocabulary; the remaining kinds cover the
// relationships the paper promotes to first-class (§3.2–3.3).
type EdgeKind int

const (
	// Navigation edge kinds (values mirror event.Transition).
	EdgeLink              = EdgeKind(event.TransLink)
	EdgeTyped             = EdgeKind(event.TransTyped)
	EdgeBookmarkClick     = EdgeKind(event.TransBookmark)
	EdgeEmbed             = EdgeKind(event.TransEmbed)
	EdgeRedirectPermanent = EdgeKind(event.TransRedirectPermanent)
	EdgeRedirectTemporary = EdgeKind(event.TransRedirectTemporary)
	EdgeDownloadNav       = EdgeKind(event.TransDownload)
	EdgeFramedLink        = EdgeKind(event.TransFramedLink)
	EdgeSearchResult      = EdgeKind(event.TransSearchResult)
	EdgeFormSubmitNav     = EdgeKind(event.TransFormSubmit)
	EdgeNewTab            = EdgeKind(event.TransNewTab)

	// Object edge kinds.
	edgeObjectBase EdgeKind = 100
	// EdgeSearchIssued connects the visit where the user typed a search
	// to the search-term node.
	EdgeSearchIssued EdgeKind = 101
	// EdgeSearchResults connects a search-term node to the visit of the
	// results page it produced.
	EdgeSearchResults EdgeKind = 102
	// EdgeBookmarkCreate connects the visit being bookmarked to the
	// bookmark node.
	EdgeBookmarkCreate EdgeKind = 103
	// EdgeDownloadOf connects the visit a download originated from to the
	// download node.
	EdgeDownloadOf EdgeKind = 104
	// EdgeFormFilled connects the visit where a form was filled to the
	// form-entry node.
	EdgeFormFilled EdgeKind = 105
	// EdgeFormResults connects a form-entry node to the visit its
	// submission produced.
	EdgeFormResults EdgeKind = 106
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	if k < edgeObjectBase {
		return event.Transition(k).String()
	}
	switch k {
	case EdgeSearchIssued:
		return "search-issued"
	case EdgeSearchResults:
		return "search-results"
	case EdgeBookmarkCreate:
		return "bookmark-create"
	case EdgeDownloadOf:
		return "download-of"
	case EdgeFormFilled:
		return "form-filled"
	case EdgeFormResults:
		return "form-results"
	default:
		return fmt.Sprintf("edge(%d)", int(k))
	}
}

// IsAutomatic reports whether the relationship was not the result of a
// user action (redirects, inner content; §3.2). The personalisation lens
// splices these out.
func (k EdgeKind) IsAutomatic() bool {
	return k == EdgeRedirectPermanent || k == EdgeRedirectTemporary ||
		k == EdgeEmbed || k == EdgeFramedLink
}

// Node is one homogeneous provenance node.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// URL is set for pages, visits and downloads (source URL).
	URL string
	// Title is set for pages and visits when known.
	Title string
	// Text holds a search term, form content, or a download's save path.
	Text string
	// Open is when the node came into being (visit open time, bookmark
	// creation, download completion, first issue of a search term).
	Open time.Time
	// Close is when a visit left display (§3.2). Zero means the visit is
	// still open or the close was never observed.
	Close time.Time
	// Page links a visit instance to its page identity node.
	Page NodeID
	// VisitSeq is the 1-based index of this visit among its page's
	// visits (the "version number" of §3.1).
	VisitSeq int
	// Via is the transition that created a visit instance (the kind of
	// its incoming navigation, recorded even when no origin node exists,
	// e.g. the first typed navigation of a session).
	Via EdgeKind
}

// Edge is one provenance relationship.
type Edge struct {
	From NodeID
	To   NodeID
	Kind EdgeKind
	// At is the edge timestamp (the action time).
	At time.Time
}

// VersioningMode selects the §3.1 cycle-breaking scheme (experiment E5).
type VersioningMode int

const (
	// VersionNodes (the default, what PASS does): every visit is a new
	// node instance; edges connect instances, so the graph is a DAG by
	// construction.
	VersionNodes VersioningMode = iota
	// VersionEdges: one node per page; edges carry timestamps and cycles
	// are broken only by the traversal-order the timestamps induce. The
	// node graph itself may be cyclic.
	VersionEdges
)

// String implements fmt.Stringer.
func (m VersioningMode) String() string {
	if m == VersionEdges {
		return "edge-timestamps"
	}
	return "versioned-nodes"
}

// Options configures a Store.
type Options struct {
	// Mode selects the versioning scheme. Default VersionNodes.
	Mode VersioningMode
	// SyncEvery controls the journal's group-commit window: the WAL is
	// fsynced after this many commits (an Apply is one commit, an
	// ApplyBatch is one commit regardless of size). 1 means every
	// commit is durable before the call returns; the default, 0, is
	// treated as 256.
	SyncEvery int
	// NoMmap disables memory-mapping the checkpoint at open: the file is
	// read into one heap buffer instead. Column decoding is identical;
	// only the residency of the backing bytes changes. Default off
	// (mapping on where the platform supports it).
	NoMmap bool
	// DedupWindow is the capacity of the ingest event-ID dedup window
	// (see ApplyBatchDedup). 0 means the default (65536 IDs).
	DedupWindow int
	// FS, when set, interposes on the journal's commit path (WAL and
	// metadata writes). internal/faultfs uses it to inject disk faults
	// in crash-consistency tests; nil means the real filesystem.
	FS storage.VFS
	// Replica opens the store as a read-only replica: direct mutations
	// (Apply, ApplyBatch, ApplyBatchDedup) fail with ErrReplica, and the
	// only write path is ReplicateRecord, which replays WAL records
	// shipped from a leader at the leader's LSNs. See replica.go.
	Replica bool
	// RetainPrevCheckpoint keeps one previous-generation checkpoint file
	// and lags the WAL trim by one checkpoint, so a store whose current
	// checkpoint later fails an integrity scrub can be repaired losslessly
	// (fall back to the previous generation + WAL replay — see
	// RepairStore). Costs one extra checkpoint file on disk plus one
	// checkpoint interval of WAL. Default off.
	RetainPrevCheckpoint bool
}

// ErrClosed reports an operation against a closed Store. The query
// package's ErrClosed is this same sentinel, so errors.Is works across
// layers.
var ErrClosed = errors.New("provgraph: store is closed")

// Store is the provenance graph store.
type Store struct {
	// ckptMu serialises whole checkpoint operations (and the wholesale
	// rewrites that must not interleave with one). Lock order: ckptMu
	// before mu, always.
	ckptMu sync.Mutex
	mu     sync.RWMutex
	j      *storage.Journal

	mode    VersioningMode
	replica bool // opened with Options.Replica; see replica.go

	nodes  map[NodeID]*Node
	outE   adjRows[Edge]
	inE    adjRows[Edge]
	outIDs adjRows[NodeID] // parallel adjacency for graph.Graph
	inIDs  adjRows[NodeID]

	urlIndex   *storage.BTree // URL -> page NodeID
	termIndex  *storage.BTree // term -> search-term NodeID
	openIndex  *storage.BTree // open time || node -> visit NodeID
	pageVisits map[NodeID][]NodeID

	bookmarkByURL map[string]NodeID
	downloads     []NodeID
	saveIndex     map[string]NodeID // download save path -> NodeID

	// Epoch-snapshot state (see epoch.go). gen is bumped on every
	// mutation; the dirty sets record sealed entries invalidated since
	// the last seal so snapshots can overlay just the changed tail.
	// While a background reseal is in flight, pending holds the epoch
	// boundary being flattened and the dirty sets track mutations
	// relative to it instead of the published seal.
	gen         atomic.Uint64
	snap        atomic.Pointer[Snapshot]
	sealed      *sealedEpoch
	dirtyNode   map[NodeID]struct{}
	dirtyOut    map[NodeID]struct{}
	dirtyIn     map[NodeID]struct{}
	dirtyVisits map[NodeID]struct{}
	pending     *Snapshot     // capture an in-flight reseal is flattening
	sealSeq     uint64        // bumped by epochReset to abort stale publishes
	sealDone    chan struct{} // closed when the in-flight reseal finishes
	sealGate    chan struct{} // test hook: reseals block on it before publishing

	// Checkpoint plumbing. textSource, when set (by the query engine),
	// serialises the text index restricted to a watermark so checkpoints
	// can carry it; recoveredText holds the postings a v2 load found,
	// until the first engine claims them.
	textSource      func(maxDoc NodeID) (payload []byte, watermark NodeID)
	recoveredText   []byte
	recoveredTextWM NodeID
	// ckptGen is the generation the last successful v2 checkpoint this
	// process wrote captured; a Checkpoint at the same generation is a
	// no-op. Only valid in-process (ckptGenValid) — a checkpoint
	// inherited at open or written by CheckpointV1 never suppresses a
	// fresh dump.
	ckptGen      uint64
	ckptGenValid bool

	// Ingest scratch, guarded by mu: the WAL encode buffer and the
	// secondary-index key buffer are reused across events, and nodes
	// are carved out of block allocations (nodes are only ever freed
	// wholesale, so blocks never leak individual entries).
	enc       storage.Encoder
	keyBuf    []byte
	nodeBlock []Node

	// loadedNodes is the checkpoint-loaded node slab shared with the
	// sealed epoch the snapshots read. Store pointers alias it until a
	// node is mutated in place — mutableNode copies it out first, so
	// the epoch stays immutable without duplicating the whole table at
	// load.
	loadedNodes []Node

	// thaw, when non-nil, materialises the write-side state (node slab,
	// maps, B-trees, adjacency rows) that a v3 checkpoint load deferred:
	// snapshots serve queries straight from the mapped columns, and the
	// heavy heap structures are only built on the first mutation or
	// store-level (non-snapshot) read. Cleared after running once.
	thaw func()

	// Checkpoint-residency accounting for MappedInfo: how many bytes the
	// last load left backed by the file mapping vs materialised on the
	// heap (thawing moves the slab estimate into heapLoadBytes).
	mappedBytes   int64
	heapLoadBytes int64

	// sect is the checkpoint file view the load-time aliases (column
	// arrays, strings, recovered text postings) point into. The store
	// owns one reference; it is released when the store closes AND the
	// last pinned read finishes, never before — see PinRead/unpin.
	sect *storage.SectionFile

	// closed flips once in Close; every subsequent mutation, checkpoint
	// and new read pin fails with ErrClosed. pins counts the store's own
	// liveness reference (1 while open) plus one per in-flight pinned
	// read; the transition to 0 — which can happen on a reader's
	// goroutine when Close overlaps a query — releases sect.
	closed atomic.Bool
	pins   atomic.Int64

	// numNodes counts live nodes. Maintained separately from len(s.nodes)
	// because a freshly mapped store defers populating s.nodes until thaw.
	numNodes int

	// Assembly state (per-tab), part of the persistent state because it
	// is reconstructed deterministically from the event log.
	tabCur         map[int]NodeID
	lastVisitByURL map[string]NodeID
	pendingSearch  map[int]pending
	pendingForm    map[int]pending

	// dedup is the sliding window of recently applied ingest event IDs
	// (see dedup.go). Persistent state: IDs ride the WAL records of the
	// events they key and the checkpoint's dedup section.
	dedup dedupWindow

	// Online scrub state (see scrub.go): the sweep cursor and cumulative
	// counters, both guarded by scrubMu (one scrub step at a time).
	scrubMu   sync.Mutex
	scrubCur  scrubCursor
	scrubStat ScrubStatus

	nextNode NodeID
	numEdges int
}

type pending struct {
	node NodeID
	url  string
}

// adjRows is a dense-by-NodeID adjacency column. Node IDs are dense
// small integers, so per-node edge lists live in a flat slice instead
// of a map: the ingest hot path appends without hashing, and checkpoint
// bulk-load fills the whole column in one linear pass. Index 0 is
// unused (node IDs start at 1); rows beyond the slice read as nil,
// exactly like a map miss.
type adjRows[T any] struct{ rows [][]T }

// at returns the row for id (shared; callers must not modify).
func (a *adjRows[T]) at(id NodeID) []T {
	if int(id) >= len(a.rows) {
		return nil
	}
	return a.rows[id]
}

// add appends v to id's row, growing the column as IDs advance.
func (a *adjRows[T]) add(id NodeID, v T) {
	if int(id) >= len(a.rows) {
		a.growTo(id)
	}
	a.rows[id] = append(a.rows[id], v)
}

func (a *adjRows[T]) growTo(id NodeID) {
	a.rows = append(a.rows, make([][]T, int(id)+1-len(a.rows))...)
}

// sized returns a column preallocated for IDs up to maxID.
func adjSized[T any](maxID NodeID) adjRows[T] {
	return adjRows[T]{rows: make([][]T, maxID+1)}
}

// Open opens (or creates) a provenance store in dir with default options.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith opens (or creates) a provenance store in dir.
func OpenWith(dir string, opts Options) (*Store, error) {
	s := &Store{
		mode:           opts.Mode,
		replica:        opts.Replica,
		nodes:          make(map[NodeID]*Node),
		urlIndex:       storage.NewBTree(),
		termIndex:      storage.NewBTree(),
		openIndex:      storage.NewBTree(),
		pageVisits:     make(map[NodeID][]NodeID),
		bookmarkByURL:  make(map[string]NodeID),
		saveIndex:      make(map[string]NodeID),
		tabCur:         make(map[int]NodeID),
		lastVisitByURL: make(map[string]NodeID),
		pendingSearch:  make(map[int]pending),
		pendingForm:    make(map[int]pending),
		dedup:          newDedupWindow(opts.DedupWindow),
		nextNode:       1,
	}
	s.pins.Store(1)
	s.epochInit()
	j, err := storage.OpenJournal(dir, "provgraph", storage.JournalCallbacks{
		LoadSnapshot: s.loadSnapshot,
		LoadSections: s.loadSections,
		MapSnapshot:  !opts.NoMmap,
		Replay:       s.replayEvent,
		FS:           opts.FS,
		RetainPrev:   opts.RetainPrevCheckpoint,
	})
	if err != nil {
		if s.sect != nil {
			s.sect.Close()
		}
		return nil, err
	}
	j.SyncEvery = opts.SyncEvery
	s.j = j
	return s, nil
}

// thawLocked runs the deferred write-side materialisation left by a
// mapped checkpoint load, once. Caller holds the write lock.
func (s *Store) thawLocked() {
	if s.thaw != nil {
		f := s.thaw
		s.thaw = nil
		f()
	}
}

// rlockThawed takes the read lock, first materialising the deferred
// write-side state if a mapped load left it pending. Store-level reads
// (as opposed to Snapshot reads, which run straight off the mapped
// columns) use it in place of s.mu.RLock.
func (s *Store) rlockThawed() {
	s.mu.RLock()
	if s.thaw == nil {
		return
	}
	s.mu.RUnlock()
	s.mu.Lock()
	s.thawLocked()
	s.mu.Unlock()
	s.mu.RLock()
}

// MappedInfo reports where the bytes of the loaded checkpoint live.
type MappedInfo struct {
	// MappedBytes is the checkpoint footprint served by the read-only
	// file mapping (resident at the kernel's discretion, reclaimable).
	MappedBytes int64
	// HeapBytes estimates checkpoint-derived bytes materialised on the
	// Go heap: the whole file when mapping was off, plus the node slab
	// and index structures if the store has thawed for writing.
	HeapBytes int64
}

// MappedInfo returns the store's checkpoint-residency split.
func (s *Store) MappedInfo() MappedInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return MappedInfo{MappedBytes: s.mappedBytes, HeapBytes: s.heapLoadBytes}
}

// Close flushes and closes the store, waiting for any in-flight
// background checkpoint or reseal to finish first. Close is idempotent
// and safe under concurrent use: a second (or racing) Close returns
// nil, operations racing Close either complete against the open store
// or fail with ErrClosed, and the checkpoint file view is released only
// after the last pinned read finishes — a query that pinned before
// Close keeps valid mapped memory for its whole run.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.ckptMu.Lock()
	s.mu.Lock()
	err := s.j.Close()
	s.mu.Unlock()
	s.ckptMu.Unlock()
	s.WaitReseal()
	// Drop the store's own liveness pin. If no reads are in flight this
	// releases the checkpoint view (unmapping it) right here; otherwise
	// the last reader's unpin does.
	s.unpin()
	return err
}

// PinRead pins the store's checkpoint view for a read: while the
// returned release function has not been called, the mapped checkpoint
// bytes every snapshot aliases stay valid even if Close runs
// concurrently. It fails with ErrClosed once Close has begun. release
// must be called exactly once.
func (s *Store) PinRead() (release func(), err error) {
	for {
		n := s.pins.Load()
		if n <= 0 || s.closed.Load() {
			return nil, ErrClosed
		}
		if s.pins.CompareAndSwap(n, n+1) {
			return s.unpin, nil
		}
	}
}

// unpin drops one pin; the holder of the final pin releases the
// checkpoint file view. Only one goroutine can observe the 0
// transition, and PinRead never resurrects a zero count, so the release
// is exclusive.
func (s *Store) unpin() {
	if s.pins.Add(-1) != 0 {
		return
	}
	if s.sect != nil {
		s.sect.Close()
		s.sect = nil
	}
}

// Sync forces journaled events to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.j.Sync()
}

// Checkpoint writes a sectioned columnar (v2) checkpoint and drops the
// WAL prefix it covers. Writers are not blocked for the dump: the call
// takes the write lock only to capture an immutable snapshot of the
// current generation (O(tail)), an O(tabs) assembly copy and the WAL
// fence, then flattens and streams the columnar sections in the
// background, and finally re-takes the lock for the atomic metadata
// swap. A crash mid-write leaves the previous checkpoint live; recovery
// proceeds from it plus the WAL.
//
// The caller observes a synchronous Checkpoint (the call returns once
// the new checkpoint is durable), but concurrent Apply/ApplyBatch
// proceed throughout the dump. Checkpoints are serialised: a second
// concurrent call waits for the first.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	// Idle skip: if nothing moved since the last checkpoint this
	// process wrote, the file on disk is already exact — a periodic
	// -checkpoint-every tick on a quiet daemon costs two lock
	// acquisitions, not a graph flatten and a multi-MB rewrite.
	if s.ckptGenValid && s.gen.Load() == s.ckptGen {
		s.mu.Unlock()
		return nil
	}
	sn := s.snapshotLocked()
	asm := s.captureAssemblyLocked()
	textSource := s.textSource
	ticket, err := s.j.BeginCheckpoint()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	// Off-lock: flatten the capture into pure columnar arrays (the same
	// O(n) pass background reseals run) and stream the sections. A
	// flat capture with an empty tail IS its sealed epoch — reuse it
	// rather than reproducing it element by element.
	ep := sn.sealed
	if ep == nil || sn.base != nil || sn.maxID != ep.maxID ||
		len(sn.tailNodes)+len(sn.tailOut)+len(sn.tailIn)+len(sn.tailVisits) != 0 {
		ep = flattenEpoch(sn)
	}
	var text []byte
	var textWM NodeID
	if textSource != nil {
		text, textWM = textSource(sn.maxID)
	}
	if err := ticket.WriteSections(func(w *storage.SectionWriter) error {
		return writeSnapshotV3(w, ep, asm, text, textWM)
	}); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.j.CommitCheckpoint(ticket); err != nil {
		return err
	}
	s.ckptGen, s.ckptGenValid = sn.gen, true
	return nil
}

// CheckpointV1 writes a legacy record-format (v1) checkpoint
// synchronously under the write lock — the pre-columnar path, kept for
// format-compatibility tests, the E1 schema comparison (which wants
// both schemas on the identical record substrate), and as the dump
// wholesale rewrites use (see ExpireBefore).
func (s *Store) CheckpointV1() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	s.ckptGenValid = false // the on-disk snapshot is v1 now; don't idle-skip over it
	return s.j.Checkpoint(s.writeSnapshot)
}

// SetTextCheckpointSource registers the function checkpoints call (off
// the store lock) to obtain serialized text-index postings restricted
// to the checkpoint's node watermark. The query engine registers itself
// here so cold opens can warm-start textual search.
func (s *Store) SetTextCheckpointSource(fn func(maxDoc NodeID) (payload []byte, watermark NodeID)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.textSource = fn
}

// RecoveredTextIndex hands over the text-index postings the last open
// recovered from a v2 checkpoint, parsed and ready, plus the node
// watermark they cover. The payload is consumed: only the first caller
// (the engine that will own the index) receives it; corrupt payloads
// are dropped silently — the engine then rebuilds from scratch, which
// is slower but always correct.
func (s *Store) RecoveredTextIndex() (*textindex.Index, NodeID, bool) {
	s.mu.Lock()
	payload, wm := s.recoveredText, s.recoveredTextWM
	s.recoveredText = nil
	s.mu.Unlock()
	if payload == nil {
		return nil, 0, false
	}
	// Frozen load: the index serves queries straight off the payload
	// (which aliases the mapped checkpoint when the store is mapped) and
	// only materialises map-form postings if something writes to it.
	ix, err := textindex.LoadFrozen(payload)
	if err != nil {
		return nil, 0, false
	}
	return ix, wm, true
}

// CheckpointInfo describes the store's durable checkpoint state.
type CheckpointInfo struct {
	// Bytes is the size of the current checkpoint file (0 if none).
	Bytes int64
	// WALBytes is the size of the log tail not covered by it.
	WALBytes int64
	// LastAt is when the current checkpoint was written (the file mtime
	// for checkpoints inherited at open; zero if there is none).
	LastAt time.Time
}

// CheckpointInfo reports checkpoint size and age for monitoring.
func (s *Store) CheckpointInfo() CheckpointInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return CheckpointInfo{
		Bytes:    s.j.SnapshotSize(),
		WALBytes: s.j.WALSize(),
		LastAt:   s.j.SnapshotTime(),
	}
}

// SizeOnDisk returns the durable footprint in bytes (experiment E1).
func (s *Store) SizeOnDisk() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.j.SizeOnDisk()
}

// Mode returns the versioning mode the store was opened with.
func (s *Store) Mode() VersioningMode { return s.mode }

// Apply journals ev and folds it into the graph. One Apply is one
// commit: with SyncEvery=1 it is durable before the call returns.
func (s *Store) Apply(ev *event.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.replica {
		return ErrReplica
	}
	s.enc.Reset()
	encodeEventInto(&s.enc, ev)
	if err := s.j.Log(s.enc.Bytes()); err != nil {
		return err
	}
	s.applyEvent(ev)
	s.maybeReseal()
	return nil
}

// ErrInvalidBatch reports an ApplyBatch rejected during the up-front
// validation pass: nothing was logged or applied. Callers can match it
// with errors.Is to distinguish the safe-to-retry-per-event case from
// an I/O failure, after which a prefix of the batch IS applied.
var ErrInvalidBatch = errors.New("provgraph: invalid event in batch")

// ApplyBatch journals and folds a batch of events under one lock
// acquisition and one group commit: every event is validated up front
// (an invalid event rejects the whole batch, wrapped in
// ErrInvalidBatch, before anything is logged), the WAL append streams
// through the store's reusable encode scratch, and the batch counts as
// a single commit toward the journal's SyncEvery window — so with
// SyncEvery=1 the batch costs one fsync instead of len(evs).
//
// Durability is batched, atomicity is not: if the log append fails
// partway (I/O error), the events already appended are applied in
// memory — keeping the store consistent with the durable prefix — and
// the error (not ErrInvalidBatch) is returned.
func (s *Store) ApplyBatch(evs []*event.Event) error {
	if len(evs) == 0 {
		return nil
	}
	for i, ev := range evs {
		if err := ev.Validate(); err != nil {
			return fmt.Errorf("%w %d: %v", ErrInvalidBatch, i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.replica {
		return ErrReplica
	}
	logged, err := s.j.LogBatch(len(evs), func(i int) []byte {
		s.enc.Reset()
		encodeEventInto(&s.enc, evs[i])
		return s.enc.Bytes()
	})
	for _, ev := range evs[:logged] {
		s.applyEvent(ev)
	}
	s.maybeReseal()
	return err
}

// replayEvent is the journal recovery path. Dedup-keyed records carry
// the ingest event ID ahead of the event payload; replaying one
// restores the ID to the window in the same step that re-applies its
// event, so the recovered store rejects the same retries the live store
// would have.
func (s *Store) replayEvent(payload []byte) error {
	id, ev, err := decodeWALRecord(payload)
	if err != nil {
		return err
	}
	s.applyEvent(ev)
	if id != "" {
		s.dedup.add(id)
	}
	return nil
}

// ---- assembly ----

// nodeBlockSize is how many nodes one block allocation carves out.
const nodeBlockSize = 256

func (s *Store) newNode(kind NodeKind, at time.Time) *Node {
	// Nodes come out of block allocations: the store only ever frees
	// nodes wholesale (retention rebuilds the maps but keeps surviving
	// pointers), so blocks are never partially reclaimed and the apply
	// path pays one allocation per nodeBlockSize nodes instead of one
	// per node.
	if len(s.nodeBlock) == 0 {
		s.nodeBlock = make([]Node, nodeBlockSize)
	}
	n := &s.nodeBlock[0]
	s.nodeBlock = s.nodeBlock[1:]
	n.ID, n.Kind, n.Open = s.nextNode, kind, at
	s.nextNode++
	s.numNodes++
	s.nodes[n.ID] = n
	return n
}

// mutableNode returns a node pointer that is safe to mutate in place:
// if s.nodes[id] still aliases the checkpoint-loaded slab (which the
// sealed epoch shares with every pinned snapshot), the node is copied
// out and the store repointed first. Every in-place field mutation of
// an existing node must go through this — writing through a slab
// pointer would edit history under pinned readers.
func (s *Store) mutableNode(id NodeID) *Node {
	n := s.nodes[id]
	if int(id) < len(s.loadedNodes) && n == &s.loadedNodes[id] {
		cp := *n
		n = &cp
		s.nodes[id] = n
	}
	return n
}

// addEdge inserts a provenance edge and maintains both adjacency views.
func (s *Store) addEdge(from, to NodeID, kind EdgeKind, at time.Time) {
	if from == 0 || to == 0 || from == to {
		return
	}
	e := Edge{From: from, To: to, Kind: kind, At: at}
	s.outE.add(from, e)
	s.inE.add(to, e)
	s.outIDs.add(from, to)
	s.inIDs.add(to, from)
	s.numEdges++
	if lim := s.dirtyLimit(); lim > 0 {
		if from <= lim {
			s.dirtyOut[from] = struct{}{}
		}
		if to <= lim {
			s.dirtyIn[to] = struct{}{}
		}
	}
}

// scratchKey loads k into the store's reusable key scratch for B-tree
// lookups and inserts (the B-tree copies keys it inserts, so handing
// it the scratch is safe). Caller holds the write lock; the buffer is
// valid until the next scratchKey/appendTimeKey use.
func (s *Store) scratchKey(k string) []byte {
	s.keyBuf = append(s.keyBuf[:0], k...)
	return s.keyBuf
}

// ensurePage returns the page identity node for url, creating it at time
// at if needed.
func (s *Store) ensurePage(url, title string, at time.Time) *Node {
	if id, ok := s.urlIndex.Get(s.scratchKey(url)); ok {
		p := s.nodes[NodeID(id)]
		if p.Title == "" && title != "" {
			p = s.mutableNode(NodeID(id))
			p.Title = title
			s.markDirtyNode(p.ID)
		}
		return p
	}
	p := s.newNode(KindPage, at)
	p.URL = url
	p.Title = title
	s.urlIndex.Put(s.keyBuf, uint64(p.ID))
	return p
}

func (s *Store) applyEvent(ev *event.Event) {
	// A mapped open defers building the write-side structures; the first
	// mutation (including WAL replay at open) materialises them.
	if s.thaw != nil {
		s.thawLocked()
	}
	// Every mutation moves the store to a new generation; lock-free
	// readers use this to decide when a cached snapshot went stale.
	defer s.gen.Add(1)
	switch ev.Type {
	case event.TypeVisit:
		s.applyVisit(ev)
	case event.TypeClose:
		s.applyClose(ev)
	case event.TypeBookmarkAdd:
		s.applyBookmarkAdd(ev)
	case event.TypeDownload:
		s.applyDownload(ev)
	case event.TypeSearch:
		s.applySearch(ev)
	case event.TypeFormSubmit:
		s.applyFormSubmit(ev)
	case event.TypeTabOpen:
		// The new tab's first visit arrives as TransNewTab; nothing to do
		// beyond what that visit records.
	}
}

// originFor locates the instance node a navigation came from: the current
// visit in the same tab when it matches the referrer (or when the
// navigation is typed/bookmark, where the "referrer" is simply the page
// the user was looking at), otherwise the most recent visit of the
// referrer URL in any tab.
func (s *Store) originFor(ev *event.Event) NodeID {
	cur := s.tabCur[ev.Tab]
	if ev.Referrer == "" {
		// Typed/bookmark navigations carry no referrer; the context edge
		// still points from what was on screen in that tab (§3.2).
		if ev.Transition == event.TransTyped || ev.Transition == event.TransBookmark {
			return cur
		}
		return 0
	}
	if cur != 0 && s.nodes[cur].URL == ev.Referrer {
		return cur
	}
	// Another tab may hold the referrer (e.g. "open in new tab").
	for _, v := range s.tabCur {
		if v != 0 && s.nodes[v].URL == ev.Referrer {
			return v
		}
	}
	return s.lastVisitByURL[ev.Referrer]
}

func (s *Store) applyVisit(ev *event.Event) {
	page := s.ensurePage(ev.URL, ev.Title, ev.Time)
	origin := s.originFor(ev)

	var v *Node
	if s.mode == VersionEdges {
		// E5 ablation: the page node doubles as the visit; edges carry
		// the time stamps and the node graph may be cyclic.
		v = page
		if v.Open.IsZero() || ev.Time.Before(v.Open) {
			v = s.mutableNode(v.ID)
			v.Open = ev.Time
			s.markDirtyNode(v.ID)
		}
	} else {
		v = s.newNode(KindVisit, ev.Time)
		v.URL = ev.URL
		v.Title = ev.Title
		v.Page = page.ID
		v.Via = EdgeKind(ev.Transition)
		s.pageVisits[page.ID] = append(s.pageVisits[page.ID], v.ID)
		v.VisitSeq = len(s.pageVisits[page.ID])
		s.keyBuf = appendTimeKey(s.keyBuf[:0], ev.Time, v.ID)
		s.openIndex.Put(s.keyBuf, uint64(v.ID))
		if page.ID <= s.dirtyLimit() {
			s.dirtyVisits[page.ID] = struct{}{}
		}
	}

	if origin != 0 {
		s.addEdge(origin, v.ID, EdgeKind(ev.Transition), ev.Time)
	}

	// Bookmark clicks also descend from the bookmark object itself.
	if ev.Transition == event.TransBookmark {
		if b, ok := s.bookmarkByURL[ev.URL]; ok {
			s.addEdge(b, v.ID, EdgeBookmarkClick, ev.Time)
		}
	}

	// Resolve a pending search/form submission for this tab: the results
	// page descends from the term node.
	if p, ok := s.pendingSearch[ev.Tab]; ok && p.url == ev.URL {
		s.addEdge(p.node, v.ID, EdgeSearchResults, ev.Time)
		delete(s.pendingSearch, ev.Tab)
	}
	if p, ok := s.pendingForm[ev.Tab]; ok && p.url == ev.URL {
		s.addEdge(p.node, v.ID, EdgeFormResults, ev.Time)
		delete(s.pendingForm, ev.Tab)
	}

	// Inner content does not replace the page on display.
	if ev.Transition == event.TransEmbed || ev.Transition == event.TransFramedLink {
		if s.mode == VersionNodes {
			// An embed is never "open" in a tab; close it instantly.
			v.Close = ev.Time
		}
		return
	}

	// The navigation replaces the tab's current page: close it (§3.2).
	if s.mode == VersionNodes {
		if prev := s.tabCur[ev.Tab]; prev != 0 && prev != v.ID {
			if pn := s.nodes[prev]; pn.Close.IsZero() {
				s.mutableNode(prev).Close = ev.Time
				s.markDirtyNode(prev)
			}
		}
	}
	s.tabCur[ev.Tab] = v.ID
	s.lastVisitByURL[ev.URL] = v.ID
}

func (s *Store) applyClose(ev *event.Event) {
	cur := s.tabCur[ev.Tab]
	if cur == 0 {
		return
	}
	if s.mode == VersionNodes {
		if n := s.nodes[cur]; n.Close.IsZero() {
			s.mutableNode(cur).Close = ev.Time
			s.markDirtyNode(cur)
		}
	}
	delete(s.tabCur, ev.Tab)
}

func (s *Store) applyBookmarkAdd(ev *event.Event) {
	b := s.newNode(KindBookmark, ev.Time)
	b.URL = ev.URL
	b.Title = ev.Title
	s.bookmarkByURL[ev.URL] = b.ID
	// The bookmark descends from the visit being bookmarked.
	origin := s.tabCur[ev.Tab]
	if origin == 0 || s.nodes[origin].URL != ev.URL {
		origin = s.lastVisitByURL[ev.URL]
	}
	s.addEdge(origin, b.ID, EdgeBookmarkCreate, ev.Time)
}

func (s *Store) applyDownload(ev *event.Event) {
	d := s.newNode(KindDownload, ev.Time)
	d.URL = ev.URL
	d.Text = ev.SavePath
	d.Title = ev.ContentType
	s.downloads = append(s.downloads, d.ID)
	s.saveIndex[ev.SavePath] = d.ID
	origin := s.tabCur[ev.Tab]
	if ev.Referrer != "" {
		if o := s.lastVisitByURL[ev.Referrer]; o != 0 {
			origin = o
		}
	}
	s.addEdge(origin, d.ID, EdgeDownloadOf, ev.Time)
}

func (s *Store) applySearch(ev *event.Event) {
	// Every issuance creates a fresh term instance. Reusing one node per
	// term string would let a visit that descends from the term's
	// earlier results point back at it — exactly the cycle class §3.1
	// breaks by versioning ("a new version of some object in the cycle
	// must be created"). The term index tracks the latest instance.
	t := s.newNode(KindSearchTerm, ev.Time)
	t.Text = ev.Terms
	s.scratchKey(ev.Terms)
	if prev, ok := s.termIndex.Get(s.keyBuf); ok {
		if pn := s.nodes[NodeID(prev)]; pn != nil {
			t.VisitSeq = pn.VisitSeq + 1
		}
	} else {
		t.VisitSeq = 1
	}
	s.termIndex.Put(s.keyBuf, uint64(t.ID))
	// The term descends from the visit where it was issued.
	s.addEdge(s.tabCur[ev.Tab], t.ID, EdgeSearchIssued, ev.Time)
	s.pendingSearch[ev.Tab] = pending{node: t.ID, url: ev.URL}
}

func (s *Store) applyFormSubmit(ev *event.Event) {
	f := s.newNode(KindFormEntry, ev.Time)
	f.Text = ev.Terms
	f.URL = ev.URL
	s.addEdge(s.tabCur[ev.Tab], f.ID, EdgeFormFilled, ev.Time)
	s.pendingForm[ev.Tab] = pending{node: f.ID, url: ev.URL}
}

// appendTimeKey appends the open-time index key to dst: big-endian
// shifted micros followed by the node ID for uniqueness. The write path
// reuses the store's key scratch; read paths (which hold only the read
// lock and therefore must not share scratch) use the allocating timeKey.
func appendTimeKey(dst []byte, t time.Time, id NodeID) []byte {
	u := uint64(t.UnixMicro()) + (1 << 63)
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(u>>(56-8*i)))
	}
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(uint64(id)>>(56-8*i)))
	}
	return dst
}

// timeKey builds the open-time index key in a fresh buffer.
func timeKey(t time.Time, id NodeID) []byte {
	return appendTimeKey(make([]byte, 0, 16), t, id)
}
