package provgraph

import (
	"fmt"
	"testing"
	"time"

	"browserprov/internal/event"
	"browserprov/internal/graph"
)

// buildExpirableHistory creates: an old download chain (forum -> shady
// -> download), old plain browsing, and recent browsing.
func buildExpirableHistory(t *testing.T, s *Store) (cutoff time.Time) {
	t.Helper()
	// Old era: day 0.
	mustApply(t, s,
		visit(1, "http://forum.example/", "Forum", "", event.TransTyped, t0),
		visit(1, "http://shady.example/", "Shady", "http://forum.example/", event.TransLink, t0.Add(time.Minute)),
		&event.Event{Time: t0.Add(2 * time.Minute), Type: event.TypeDownload, Tab: 1,
			URL: "http://cdn.example/x.exe", Referrer: "http://shady.example/", SavePath: "/dl/x.exe"},
	)
	// Old plain browsing that nothing depends on.
	for i := 0; i < 10; i++ {
		mustApply(t, s, visit(2, fmt.Sprintf("http://old%d.example/", i), "Old", "", event.TransTyped, t0.Add(time.Duration(10+i)*time.Minute)))
	}
	// Old bookmark.
	mustApply(t, s,
		visit(3, "http://keep.example/", "Keep", "", event.TransTyped, t0.Add(30*time.Minute)),
		&event.Event{Time: t0.Add(31 * time.Minute), Type: event.TypeBookmarkAdd, Tab: 3, URL: "http://keep.example/", Title: "Keep"},
	)
	// Recent era: day 30.
	cutoff = t0.Add(20 * 24 * time.Hour)
	recent := t0.Add(30 * 24 * time.Hour)
	for i := 0; i < 5; i++ {
		mustApply(t, s, visit(4, fmt.Sprintf("http://new%d.example/", i), "New", "", event.TransTyped, recent.Add(time.Duration(i)*time.Minute)))
	}
	return cutoff
}

func TestExpireRemovesOldKeepsRecent(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	cutoff := buildExpirableHistory(t, s)
	before := s.Stats()
	removed, err := s.ExpireBefore(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing expired")
	}
	after := s.Stats()
	if after.Nodes >= before.Nodes {
		t.Fatalf("nodes %d -> %d", before.Nodes, after.Nodes)
	}
	// Recent pages survive.
	for i := 0; i < 5; i++ {
		if _, ok := s.PageByURL(fmt.Sprintf("http://new%d.example/", i)); !ok {
			t.Fatalf("recent page %d expired", i)
		}
	}
	// Old plain pages are gone.
	for i := 0; i < 10; i++ {
		if _, ok := s.PageByURL(fmt.Sprintf("http://old%d.example/", i)); ok {
			t.Fatalf("old page %d survived", i)
		}
	}
}

func TestExpirePinsDownloadLineage(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	cutoff := buildExpirableHistory(t, s)
	if _, err := s.ExpireBefore(cutoff); err != nil {
		t.Fatal(err)
	}
	dls := s.Downloads()
	if len(dls) != 1 {
		t.Fatalf("downloads after expire = %d", len(dls))
	}
	// The full ancestor chain must still be walkable to the forum.
	forum, ok := s.PageByURL("http://forum.example/")
	if !ok {
		t.Fatal("forum page expired despite being in download lineage")
	}
	fv := s.VisitsOfPage(forum.ID)
	if len(fv) != 1 {
		t.Fatalf("forum visits = %d", len(fv))
	}
	path, found := graph.FindFirst(s, dls[0], graph.Backward, false, func(n NodeID) bool { return n == fv[0] })
	if !found {
		t.Fatal("download lineage broken by expiration")
	}
	if len(path) != 3 {
		t.Fatalf("lineage path = %d hops, want 3", len(path))
	}
}

func TestExpireKeepsBookmarks(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	cutoff := buildExpirableHistory(t, s)
	if _, err := s.ExpireBefore(cutoff); err != nil {
		t.Fatal(err)
	}
	if len(s.NodesOfKind(KindBookmark)) != 1 {
		t.Fatal("bookmark expired")
	}
	if _, ok := s.PageByURL("http://keep.example/"); !ok {
		t.Fatal("bookmarked page identity expired")
	}
}

func TestExpireSplicesConnectivity(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	// Pinned old ancestor (download origin) -> old middle visit ->
	// recent visit. The middle expires; the recent node must stay
	// reachable from the pinned one via a splice edge.
	mustApply(t, s,
		visit(1, "http://origin.example/", "Origin", "", event.TransTyped, t0),
		&event.Event{Time: t0.Add(time.Minute), Type: event.TypeDownload, Tab: 1,
			URL: "http://origin.example/f.zip", Referrer: "http://origin.example/", SavePath: "/dl/f.zip"},
		visit(1, "http://middle.example/", "Middle", "http://origin.example/", event.TransLink, t0.Add(2*time.Minute)),
	)
	recent := t0.Add(40 * 24 * time.Hour)
	// A recent navigation chaining from the (stale but still current in
	// tab 1) middle page.
	mustApply(t, s, visit(1, "http://recent.example/", "Recent", "http://middle.example/", event.TransLink, recent))

	cutoff := t0.Add(20 * 24 * time.Hour)
	if _, err := s.ExpireBefore(cutoff); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.PageByURL("http://middle.example/"); ok {
		t.Fatal("middle page survived")
	}
	origin, _ := s.PageByURL("http://origin.example/")
	ov := s.VisitsOfPage(origin.ID)[0]
	recentPage, ok := s.PageByURL("http://recent.example/")
	if !ok {
		t.Fatal("recent page expired")
	}
	rv := s.VisitsOfPage(recentPage.ID)[0]
	reach := graph.Reach(s, ov, graph.Forward, -1)
	if _, ok := reach[rv]; !ok {
		t.Fatal("connectivity lost: no splice edge bridged the expired middle")
	}
	// The splice edge is marked as such.
	spliced := false
	for _, e := range s.InEdges(rv) {
		if e.Kind == EdgeExpiredSplice {
			spliced = true
		}
	}
	if !spliced {
		t.Fatal("splice edge not marked EdgeExpiredSplice")
	}
}

func TestExpirePreservesDAGAndPersists(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	cutoff := buildExpirableHistory(t, s)
	if _, err := s.ExpireBefore(cutoff); err != nil {
		t.Fatal(err)
	}
	if cycle := s.VerifyDAG(); cycle != nil {
		t.Fatalf("expiration created a cycle: %v", cycle)
	}
	want := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	if s2.Stats() != want {
		t.Fatalf("stats after reopen = %+v, want %+v", s2.Stats(), want)
	}
	// The store keeps working post-expiration.
	mustApply(t, s2, visit(9, "http://after.example/", "After", "", event.TransTyped, t0.Add(60*24*time.Hour)))
	if _, ok := s2.PageByURL("http://after.example/"); !ok {
		t.Fatal("ingest broken after expiration")
	}
}

func TestExpireEverythingRecentIsNoop(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s, visit(1, "http://a.example/", "A", "", event.TransTyped, t0))
	removed, err := s.ExpireBefore(t0.Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("removed %d from all-recent history", removed)
	}
	if _, ok := s.PageByURL("http://a.example/"); !ok {
		t.Fatal("node lost in no-op expiration")
	}
}

func TestExpireShrinksDisk(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	cutoff := buildExpirableHistory(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := s.SizeOnDisk()
	if _, err := s.ExpireBefore(cutoff); err != nil {
		t.Fatal(err)
	}
	if after := s.SizeOnDisk(); after > before {
		t.Fatalf("disk grew across expiration: %d -> %d", before, after)
	}
}
