package provgraph

import (
	"fmt"
	"sort"
	"time"

	"browserprov/internal/event"
	"browserprov/internal/storage"
)

// ---- event codec (WAL payloads) ----

// encodeEventInto serialises a browsing event for the journal into e
// (which the caller resets and reuses across events — the apply hot
// path pays zero encoder allocations). The WAL is therefore a complete,
// replayable activity log — the provenance store's ground truth.
func encodeEventInto(e *storage.Encoder, ev *event.Event) {
	e.Uvarint(uint64(ev.Type))
	e.Time(ev.Time)
	e.Varint(int64(ev.Tab))
	e.String(ev.URL)
	e.String(ev.Title)
	e.String(ev.Referrer)
	e.Uvarint(uint64(ev.Transition))
	e.String(ev.Terms)
	e.String(ev.SavePath)
	e.String(ev.ContentType)
}

// decodeWALRecord decodes one journal payload: either a bare event
// (first uvarint is the event type, 0..6) or a dedup-keyed ingest
// record (walRecDedup discriminator, then the ID, then the event).
func decodeWALRecord(payload []byte) (id string, ev *event.Event, err error) {
	d := storage.NewDecoder(payload)
	first, err := d.Uvarint()
	if err != nil {
		return "", nil, err
	}
	if first != walRecDedup {
		ev, err = decodeEvent(payload)
		return "", ev, err
	}
	if id, err = d.String(); err != nil {
		return "", nil, err
	}
	ev, err = decodeEvent(payload[len(payload)-d.Remaining():])
	return id, ev, err
}

func decodeEvent(payload []byte) (*event.Event, error) {
	d := storage.NewDecoder(payload)
	var ev event.Event
	ty, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	ev.Type = event.Type(ty)
	if ev.Time, err = d.Time(); err != nil {
		return nil, err
	}
	tab, err := d.Varint()
	if err != nil {
		return nil, err
	}
	ev.Tab = int(tab)
	if ev.URL, err = d.String(); err != nil {
		return nil, err
	}
	if ev.Title, err = d.String(); err != nil {
		return nil, err
	}
	if ev.Referrer, err = d.String(); err != nil {
		return nil, err
	}
	tr, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	ev.Transition = event.Transition(tr)
	if ev.Terms, err = d.String(); err != nil {
		return nil, err
	}
	if ev.SavePath, err = d.String(); err != nil {
		return nil, err
	}
	if ev.ContentType, err = d.String(); err != nil {
		return nil, err
	}
	return &ev, nil
}

// ---- snapshot ----

// Snapshot record kinds.
const (
	snapNode     = 1
	snapEdges    = 2 // one record per source node, all its out-edges
	snapAssembly = 3
	snapDedup    = 4 // ingest event-ID dedup window, insertion order
)

// writeSnapshot dumps the graph into the checkpoint heap file: all nodes
// in ID order, all edges in (from, insertion) order, then the assembly
// state needed to keep ingesting after recovery.
func (s *Store) writeSnapshot(h *storage.HeapFile) error {
	enc := storage.NewEncoder(256)
	put := func() error {
		_, err := h.Append(enc.Bytes())
		return err
	}
	ids := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := s.nodes[id]
		enc.Reset()
		enc.Uvarint(snapNode)
		enc.Uvarint(uint64(n.ID))
		enc.Uvarint(uint64(n.Kind))
		// Visit instances inherit URL and title from their page node;
		// storing them again would bloat the dominant table (and is the
		// normalisation Places itself applies via place_id).
		if n.Kind == KindVisit {
			enc.String("")
			enc.String("")
		} else {
			enc.String(n.URL)
			enc.String(n.Title)
		}
		enc.String(n.Text)
		enc.Time(n.Open)
		enc.Time(n.Close)
		enc.Uvarint(uint64(n.Page))
		enc.Varint(int64(n.VisitSeq))
		enc.Uvarint(uint64(n.Via))
		if err := put(); err != nil {
			return err
		}
	}
	// Edges, grouped per source node to amortise record framing. The
	// timestamp is omitted when it equals the target node's open time
	// (the overwhelmingly common case: the action that created the edge
	// also created the target instance), mirroring how Places stores
	// from_visit without a second date column.
	for _, id := range ids {
		edges := s.outE.at(id)
		if len(edges) == 0 {
			continue
		}
		enc.Reset()
		enc.Uvarint(snapEdges)
		enc.Uvarint(uint64(id))
		enc.Uvarint(uint64(len(edges)))
		for _, e := range edges {
			enc.Uvarint(uint64(e.To))
			hasAt := uint64(0)
			if to := s.nodes[e.To]; to == nil || !e.At.Equal(to.Open) {
				hasAt = 1
			}
			enc.Uvarint(uint64(e.Kind)<<1 | hasAt)
			if hasAt == 1 {
				enc.Time(e.At)
			}
		}
		if err := put(); err != nil {
			return err
		}
	}
	// Assembly state: counters, per-tab cursors, pending joins.
	enc.Reset()
	enc.Uvarint(snapAssembly)
	enc.Uvarint(uint64(s.nextNode))
	enc.Uvarint(uint64(s.mode))
	enc.Uvarint(uint64(len(s.tabCur)))
	tabs := make([]int, 0, len(s.tabCur))
	for t := range s.tabCur {
		tabs = append(tabs, t)
	}
	sort.Ints(tabs)
	for _, t := range tabs {
		enc.Varint(int64(t))
		enc.Uvarint(uint64(s.tabCur[t]))
	}
	writePending := func(m map[int]pending) {
		enc.Uvarint(uint64(len(m)))
		ks := make([]int, 0, len(m))
		for t := range m {
			ks = append(ks, t)
		}
		sort.Ints(ks)
		for _, t := range ks {
			enc.Varint(int64(t))
			enc.Uvarint(uint64(m[t].node))
			enc.String(m[t].url)
		}
	}
	writePending(s.pendingSearch)
	writePending(s.pendingForm)
	if err := put(); err != nil {
		return err
	}
	// Ingest dedup window, in insertion order so recovery reproduces the
	// same eviction sequence.
	dedupIDs := s.dedup.snapshot()
	enc.Reset()
	enc.Uvarint(snapDedup)
	enc.Uvarint(uint64(len(dedupIDs)))
	for _, id := range dedupIDs {
		enc.String(id)
	}
	return put()
}

// loadSnapshot rebuilds the graph and all derived indexes.
func (s *Store) loadSnapshot(h *storage.HeapFile) error {
	err := h.Scan(func(_ storage.RecordID, rec []byte) error {
		d := storage.NewDecoder(rec)
		kind, err := d.Uvarint()
		if err != nil {
			return err
		}
		switch kind {
		case snapNode:
			var n Node
			id, err := d.Uvarint()
			if err != nil {
				return err
			}
			n.ID = NodeID(id)
			nk, err := d.Uvarint()
			if err != nil {
				return err
			}
			n.Kind = NodeKind(nk)
			if n.URL, err = d.String(); err != nil {
				return err
			}
			if n.Title, err = d.String(); err != nil {
				return err
			}
			if n.Text, err = d.String(); err != nil {
				return err
			}
			if n.Open, err = d.Time(); err != nil {
				return err
			}
			if n.Close, err = d.Time(); err != nil {
				return err
			}
			pg, err := d.Uvarint()
			if err != nil {
				return err
			}
			n.Page = NodeID(pg)
			seq, err := d.Varint()
			if err != nil {
				return err
			}
			n.VisitSeq = int(seq)
			via, err := d.Uvarint()
			if err != nil {
				return err
			}
			n.Via = EdgeKind(via)
			// Rehydrate visit URL/title from the page node (page IDs
			// always precede their visits, and nodes are written in ID
			// order).
			if n.Kind == KindVisit && n.URL == "" {
				if p, ok := s.nodes[n.Page]; ok {
					n.URL = p.URL
					n.Title = p.Title
				}
			}
			s.nodes[n.ID] = &n
			s.indexNode(&n)
		case snapEdges:
			from, err := d.Uvarint()
			if err != nil {
				return err
			}
			count, err := d.Uvarint()
			if err != nil {
				return err
			}
			for i := uint64(0); i < count; i++ {
				to, err := d.Uvarint()
				if err != nil {
					return err
				}
				kf, err := d.Uvarint()
				if err != nil {
					return err
				}
				kind := EdgeKind(kf >> 1)
				var at time.Time
				if kf&1 == 1 {
					if at, err = d.Time(); err != nil {
						return err
					}
				} else if tn, ok := s.nodes[NodeID(to)]; ok {
					at = tn.Open
				}
				s.addEdge(NodeID(from), NodeID(to), kind, at)
			}
		case snapAssembly:
			nn, err := d.Uvarint()
			if err != nil {
				return err
			}
			s.nextNode = NodeID(nn)
			md, err := d.Uvarint()
			if err != nil {
				return err
			}
			s.mode = VersioningMode(md)
			ntabs, err := d.Uvarint()
			if err != nil {
				return err
			}
			for i := uint64(0); i < ntabs; i++ {
				t, err := d.Varint()
				if err != nil {
					return err
				}
				v, err := d.Uvarint()
				if err != nil {
					return err
				}
				s.tabCur[int(t)] = NodeID(v)
			}
			readPending := func(m map[int]pending) error {
				np, err := d.Uvarint()
				if err != nil {
					return err
				}
				for i := uint64(0); i < np; i++ {
					t, err := d.Varint()
					if err != nil {
						return err
					}
					nd, err := d.Uvarint()
					if err != nil {
						return err
					}
					u, err := d.String()
					if err != nil {
						return err
					}
					m[int(t)] = pending{node: NodeID(nd), url: u}
				}
				return nil
			}
			if err := readPending(s.pendingSearch); err != nil {
				return err
			}
			if err := readPending(s.pendingForm); err != nil {
				return err
			}
		case snapDedup:
			count, err := d.Uvarint()
			if err != nil {
				return err
			}
			for i := uint64(0); i < count; i++ {
				id, err := d.String()
				if err != nil {
					return err
				}
				s.dedup.add(id)
			}
		default:
			return fmt.Errorf("provgraph: unknown snapshot record kind %d", kind)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.numNodes = len(s.nodes)
	s.rebuildLastVisit()
	return nil
}

// indexNode rebuilds the secondary index entries for n during recovery.
func (s *Store) indexNode(n *Node) {
	switch n.Kind {
	case KindPage:
		s.urlIndex.Put(s.scratchKey(n.URL), uint64(n.ID))
	case KindVisit:
		s.pageVisits[n.Page] = append(s.pageVisits[n.Page], n.ID)
		s.keyBuf = appendTimeKey(s.keyBuf[:0], n.Open, n.ID)
		s.openIndex.Put(s.keyBuf, uint64(n.ID))
	case KindSearchTerm:
		s.termIndex.Put(s.scratchKey(n.Text), uint64(n.ID))
	case KindBookmark:
		s.bookmarkByURL[n.URL] = n.ID
	case KindDownload:
		s.downloads = append(s.downloads, n.ID)
		s.saveIndex[n.Text] = n.ID
	}
}

// rebuildLastVisit reconstructs the URL -> latest visit map from the
// per-page visit lists (snapshot nodes arrive in ID order, so the last
// entry of each list is the latest instance).
func (s *Store) rebuildLastVisit() {
	if s.mode == VersionEdges {
		// Pages are their own instances.
		s.urlIndex.Ascend(func(k []byte, v uint64) bool {
			s.lastVisitByURL[string(k)] = NodeID(v)
			return true
		})
		return
	}
	for page, visits := range s.pageVisits {
		if len(visits) == 0 {
			continue
		}
		p := s.nodes[page]
		s.lastVisitByURL[p.URL] = visits[len(visits)-1]
	}
}
