package provgraph

import (
	"fmt"

	"browserprov/internal/event"
	"browserprov/internal/storage"
)

// ---- idempotent ingest: the event-ID dedup window ----
//
// Network ingest retries: a client that never saw an ack re-sends its
// batch, a fault proxy duplicates it, a crashed producer replays its
// spool. The store makes all of that exactly-once by remembering the
// IDs of recently applied ingest events in a sliding window:
//
//   - the ID travels in the same WAL record as its event, so crash
//     recovery rebuilds the window and the graph from the same bytes —
//     there is no ordering gap where one is durable and the other not;
//   - checkpoints persist the window alongside the assembly state, so
//     dropping the replayed WAL prefix never forgets an ID;
//   - the window is bounded (DedupWindow, default 65536 IDs) and evicts
//     FIFO. A duplicate older than the window re-applies — the contract
//     is "exactly-once within the retry horizon", which a client
//     honouring capped exponential backoff stays well inside.

// defaultDedupWindow is the ID-window capacity when Options.DedupWindow
// is zero. At a few dozen bytes per ID this costs ~2 MB per store, and
// is ~an hour of traffic at 20 events/sec — orders of magnitude past
// any sane retry policy.
const defaultDedupWindow = 1 << 16

// dedupWindow is a FIFO sliding window of ingest event IDs. Guarded by
// the store mutex.
type dedupWindow struct {
	cap  int
	ids  map[string]struct{}
	q    []string // insertion order; q[head:] is the live window
	head int
}

func newDedupWindow(capacity int) dedupWindow {
	if capacity <= 0 {
		capacity = defaultDedupWindow
	}
	return dedupWindow{cap: capacity, ids: make(map[string]struct{})}
}

func (w *dedupWindow) seen(id string) bool {
	_, ok := w.ids[id]
	return ok
}

func (w *dedupWindow) len() int { return len(w.q) - w.head }

// add records id, evicting the oldest entries beyond capacity.
func (w *dedupWindow) add(id string) {
	if _, ok := w.ids[id]; ok {
		return
	}
	w.ids[id] = struct{}{}
	w.q = append(w.q, id)
	for len(w.q)-w.head > w.cap {
		delete(w.ids, w.q[w.head])
		w.q[w.head] = "" // release the string
		w.head++
	}
	// Compact the dead prefix once it dominates the slice.
	if w.head > 1024 && w.head > len(w.q)/2 {
		w.q = append(w.q[:0:0], w.q[w.head:]...)
		w.head = 0
	}
}

// snapshot copies the live window in insertion order (checkpoint
// capture, under the store lock).
func (w *dedupWindow) snapshot() []string {
	return append([]string(nil), w.q[w.head:]...)
}

// walRecDedup discriminates the WAL control record that carries an
// ingest event ID. Plain event payloads start with the event type
// (uvarint 0..6), so any value far above the type space is unambiguous;
// replay sniffs the first varint and dispatches.
const walRecDedup = 64

// maxEventIDLen bounds client-generated event IDs on the wire and in
// the WAL.
const maxEventIDLen = 128

// ErrBadEventID reports a structurally invalid ingest event ID.
var ErrBadEventID = fmt.Errorf("provgraph: invalid ingest event ID")

// validEventID reports whether id can be carried as an idempotency key:
// non-empty, bounded, and free of control bytes (IDs appear in logs and
// JSON results).
func validEventID(id string) bool {
	if id == "" || len(id) > maxEventIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x20 || id[i] == 0x7f {
			return false
		}
	}
	return true
}

// encodeDedupEventInto wraps an event payload with its ingest ID.
func encodeDedupEventInto(e *storage.Encoder, id string, ev *event.Event) {
	e.Uvarint(walRecDedup)
	e.String(id)
	encodeEventInto(e, ev)
}

// SeenEventID reports whether id is inside the store's dedup window
// (i.e. an event bearing it was applied recently).
func (s *Store) SeenEventID(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dedup.seen(id)
}

// DedupWindowLen returns the number of IDs currently held (monitoring).
func (s *Store) DedupWindowLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dedup.len()
}

// ApplyBatchDedup journals and folds a batch of events, skipping any
// whose ID the store has already applied. It is the idempotent sibling
// of ApplyBatch and shares its shape: one validation pass up front (an
// invalid event or malformed ID rejects the whole batch with
// ErrInvalidBatch before anything is logged), one lock acquisition, one
// group commit. ids[i] is event i's client-generated idempotency key;
// an empty ID means "not deduplicated" and is always applied.
//
// applied[i] reports whether event i was applied by THIS call; false
// means its ID was already in the window (the earlier delivery won).
// Duplicate detection and ID recording happen under the same lock and
// in the same WAL records as the events themselves, so replayed and
// concurrent deliveries of one batch can never double-apply across a
// crash: recovery rebuilds the window from the exact records it
// replays.
//
// Like ApplyBatch, durability is batched but not atomic: on an I/O
// error a logged prefix stays applied (with its IDs recorded) and the
// error is returned — the caller must treat the batch as failed and
// retry it, which converges because the applied prefix now rejects as
// duplicates.
func (s *Store) ApplyBatchDedup(ids []string, evs []*event.Event) (applied []bool, err error) {
	if len(ids) != len(evs) {
		return nil, fmt.Errorf("%w: %d ids for %d events", ErrInvalidBatch, len(ids), len(evs))
	}
	if len(evs) == 0 {
		return nil, nil
	}
	for i, ev := range evs {
		if err := ev.Validate(); err != nil {
			return nil, fmt.Errorf("%w %d: %v", ErrInvalidBatch, i, err)
		}
		if ids[i] != "" && !validEventID(ids[i]) {
			return nil, fmt.Errorf("%w %d: %v", ErrInvalidBatch, i, ErrBadEventID)
		}
	}
	applied = make([]bool, len(evs))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if s.replica {
		return nil, ErrReplica
	}
	// keep holds the indexes to log: fresh IDs and un-keyed events.
	// Duplicates WITHIN the batch also collapse (first occurrence wins),
	// since a client that merged two spool files may ship one.
	keep := make([]int, 0, len(evs))
	inBatch := make(map[string]struct{})
	for i := range evs {
		id := ids[i]
		if id != "" {
			if s.dedup.seen(id) {
				continue
			}
			if _, dup := inBatch[id]; dup {
				continue
			}
			inBatch[id] = struct{}{}
		}
		keep = append(keep, i)
	}
	if len(keep) == 0 {
		return applied, nil
	}
	logged, err := s.j.LogBatch(len(keep), func(k int) []byte {
		i := keep[k]
		s.enc.Reset()
		if ids[i] == "" {
			encodeEventInto(&s.enc, evs[i])
		} else {
			encodeDedupEventInto(&s.enc, ids[i], evs[i])
		}
		return s.enc.Bytes()
	})
	// Apply exactly the logged prefix, recording its IDs: in-memory
	// state, dedup window and WAL stay one consistent story.
	for _, i := range keep[:logged] {
		s.applyEvent(evs[i])
		if ids[i] != "" {
			s.dedup.add(ids[i])
		}
		applied[i] = true
	}
	s.maybeReseal()
	return applied, err
}
