package provgraph

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"browserprov/internal/storage"
)

// reopenWith closes nothing and opens dir with the given options.
func reopenWith(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := OpenWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMmapVsHeapLoadEquivalence: the mapped and heap-buffer loads of the
// same checkpoint must expose identical stores — column decoding is the
// same code path, only the residency of the backing bytes differs — and
// MappedInfo must report which mode is serving.
func TestMmapVsHeapLoadEquivalence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	applyAll(t, s, genIngestEvents(300, t0))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	mapped := reopenWith(t, dir, Options{})
	defer mapped.Close()
	heap := reopenWith(t, dir, Options{NoMmap: true})
	defer heap.Close()
	storesMustMatch(t, mapped, heap)

	if mi := heap.MappedInfo(); mi.MappedBytes != 0 || mi.HeapBytes == 0 {
		t.Fatalf("NoMmap open reported %+v, want heap-only residency", mi)
	}
	if mi := mapped.MappedInfo(); mi.MappedBytes == 0 && mi.HeapBytes == 0 {
		t.Fatalf("mapped open reported no checkpoint residency at all: %+v", mi)
	}
}

// TestMmapBitFlipDetected: a committed checkpoint with flipped bits must
// be refused at open with ErrSectionCorrupt — the lazy per-section CRCs
// still guard every section the loader touches. Bits are flipped every
// few hundred bytes across the whole file past the header page, so the
// damage lands in section payloads and frame headers alike.
func TestMmapBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	applyAll(t, s, genIngestEvents(300, t0))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(dir, "provgraph.snap.000001")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for off := 4096; off < len(data); off += 257 {
		data[off] ^= 0x40
	}
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir)
	if err == nil {
		t.Fatal("bit-flipped checkpoint opened without error")
	}
	if !errors.Is(err, storage.ErrSectionCorrupt) {
		t.Fatalf("open error = %v, want ErrSectionCorrupt", err)
	}
}

// TestMmapCorruptNextGenDebrisIgnored: a bit-flipped (not merely torn)
// next-generation checkpoint that never reached the metadata swap must
// not poison recovery — the store comes back from the previous
// checkpoint plus the WAL tail, byte-equal to a store that never
// crashed, and keeps serving off the (intact) previous mapping.
func TestMmapCorruptNextGenDebrisIgnored(t *testing.T) {
	dir := t.TempDir()
	evs := genIngestEvents(240, t0)
	s := openStore(t, dir)
	applyAll(t, s, evs[:150])
	if err := s.Checkpoint(); err != nil { // gen 1, durable
		t.Fatal(err)
	}
	applyAll(t, s, evs[150:]) // WAL tail rides across the "crash"
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Gen-2 debris: a truncated copy of gen 1 with bits flipped through
	// it — worse than a clean torn prefix.
	gen1 := filepath.Join(dir, "provgraph.snap.000001")
	full, err := os.ReadFile(gen1)
	if err != nil {
		t.Fatal(err)
	}
	debris := append([]byte(nil), full[:len(full)*2/3]...)
	for off := 128; off < len(debris); off += 311 {
		debris[off] ^= 0xFF
	}
	if err := os.WriteFile(filepath.Join(dir, "provgraph.snap.000002"), debris, 0o644); err != nil {
		t.Fatal(err)
	}

	ref := openStore(t, t.TempDir())
	defer ref.Close()
	applyAll(t, ref, evs)

	re := openStore(t, dir)
	defer re.Close()
	storesMustMatch(t, ref, re)
	// The next checkpoint claims the gen-2 path over the debris.
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("checkpoint over corrupt debris: %v", err)
	}
}

// TestMmapQueryDuringMutationAndCheckpoint is the aliasing safety net
// for the mapped load (run it with -race): readers hammer the full read
// surface of a mapped store while writers mutate the overlay — the
// first write thaws the mapped columns into heap form mid-flight — and
// a checkpoint commits and swaps generations underneath everyone.
func TestMmapQueryDuringMutationAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	applyAll(t, s, genIngestEvents(400, t0))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = openStore(t, dir) // mapped, thaw deferred
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				max := sn.MaxNodeID()
				for id := NodeID(1); id <= max; id += 5 {
					if n, ok := sn.NodeByID(id); ok {
						_ = sn.Out(id)
						_ = sn.In(id)
						if n.Kind == KindPage {
							_, _ = sn.PageByURL(n.URL)
							_ = sn.VisitsOfPage(id)
						}
					}
				}
				_ = sn.Downloads()
				_ = s.Stats()
				_ = s.MappedInfo()
			}
		}()
	}

	// Writers: batches force the thaw on the first commit, then keep the
	// overlay (and reseals) churning; a checkpoint swaps generations in
	// the middle of it.
	for round := 0; round < 6; round++ {
		batch := genIngestEvents(50, t0.Add(time.Duration(10000+100*round)*time.Minute))
		if err := s.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		if round == 3 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if cyc := s.VerifyDAG(); cyc != nil {
		t.Fatalf("cycle after concurrent mutation over mapped store: %v", cyc)
	}
}
