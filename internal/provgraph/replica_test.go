package provgraph

import (
	"errors"
	"fmt"
	"testing"

	"browserprov/internal/event"
	"browserprov/internal/storage"
)

// shipWAL reads every frame of src's WAL (flushed first) and replays it
// into dst via ReplicateRecord — an in-process stand-in for the wire.
func shipWAL(t *testing.T, src, dst *Store) (shipped int) {
	t.Helper()
	if err := src.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	info := src.ReplicationInfo()
	r, err := storage.OpenWALReader(info.WALPath, dst.NextLSN())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		frame, lsn, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if frame == nil {
			return shipped
		}
		applied, err := dst.ReplicateRecord(lsn, frame[16:])
		if err != nil {
			t.Fatal(err)
		}
		if applied {
			shipped++
		}
	}
}

func TestReplicaRejectsDirectWrites(t *testing.T) {
	s, err := OpenWith(t.TempDir(), Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ev := visit(1, "http://a.example/", "A", "", event.TransTyped, t0)
	if err := s.Apply(ev); !errors.Is(err, ErrReplica) {
		t.Fatalf("Apply on replica: %v, want ErrReplica", err)
	}
	if err := s.ApplyBatch([]*event.Event{ev}); !errors.Is(err, ErrReplica) {
		t.Fatalf("ApplyBatch on replica: %v, want ErrReplica", err)
	}
	if _, err := s.ApplyBatchDedup([]string{"id-1"}, []*event.Event{ev}); !errors.Is(err, ErrReplica) {
		t.Fatalf("ApplyBatchDedup on replica: %v, want ErrReplica", err)
	}
}

func TestReplicateRecordMirrorsLeader(t *testing.T) {
	leader := openStore(t, t.TempDir())
	defer leader.Close()
	follower, err := OpenWith(t.TempDir(), Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for i := 0; i < 20; i++ {
		mustApply(t, leader, visit(1, fmt.Sprintf("http://s%d.example/", i), "t", "", event.TransTyped, t0))
	}
	if n := shipWAL(t, leader, follower); n != 20 {
		t.Fatalf("shipped %d records, want 20", n)
	}
	if follower.NextLSN() != leader.NextLSN() {
		t.Fatalf("follower NextLSN %d != leader %d", follower.NextLSN(), leader.NextLSN())
	}
	for i := 0; i < 20; i++ {
		if _, ok := follower.PageByURL(fmt.Sprintf("http://s%d.example/", i)); !ok {
			t.Fatalf("page %d missing on follower", i)
		}
	}
}

func TestReplicateRecordDuplicateAndGap(t *testing.T) {
	leader := openStore(t, t.TempDir())
	defer leader.Close()
	follower, err := OpenWith(t.TempDir(), Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	mustApply(t, leader, visit(1, "http://a.example/", "A", "", event.TransTyped, t0))
	mustApply(t, leader, visit(1, "http://b.example/", "B", "", event.TransTyped, t0))
	if err := leader.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	r, err := storage.OpenWALReader(leader.ReplicationInfo().WALPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	f0, _, _ := r.ReadFrame()
	rec0 := append([]byte(nil), f0[16:]...)
	f1, _, _ := r.ReadFrame()
	rec1 := append([]byte(nil), f1[16:]...)

	// Gap: record 1 before record 0.
	if _, err := follower.ReplicateRecord(1, rec1); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap: %v, want ErrReplicaGap", err)
	}
	if applied, err := follower.ReplicateRecord(0, rec0); err != nil || !applied {
		t.Fatalf("record 0: applied=%v err=%v", applied, err)
	}
	// Duplicate: silently skipped.
	if applied, err := follower.ReplicateRecord(0, rec0); err != nil || applied {
		t.Fatalf("dup record 0: applied=%v err=%v", applied, err)
	}
	if applied, err := follower.ReplicateRecord(1, rec1); err != nil || !applied {
		t.Fatalf("record 1: applied=%v err=%v", applied, err)
	}
	if follower.NextLSN() != 2 {
		t.Fatalf("NextLSN = %d", follower.NextLSN())
	}
}

func TestReplicaSurvivesRestart(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader := openStore(t, leaderDir)
	defer leader.Close()
	follower, err := OpenWith(followerDir, Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		mustApply(t, leader, visit(1, fmt.Sprintf("http://s%d.example/", i), "t", "", event.TransTyped, t0))
	}
	shipWAL(t, leader, follower)
	if err := follower.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the replica's own journal is its high-water mark.
	follower, err = OpenWith(followerDir, Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if follower.NextLSN() != 10 {
		t.Fatalf("NextLSN after restart = %d, want 10", follower.NextLSN())
	}
	for i := 10; i < 15; i++ {
		mustApply(t, leader, visit(1, fmt.Sprintf("http://s%d.example/", i), "t", "", event.TransTyped, t0))
	}
	if n := shipWAL(t, leader, follower); n != 5 {
		t.Fatalf("resumed ship applied %d records, want 5", n)
	}
	for i := 0; i < 15; i++ {
		if _, ok := follower.PageByURL(fmt.Sprintf("http://s%d.example/", i)); !ok {
			t.Fatalf("page %d missing after resume", i)
		}
	}
}

func TestReplicaDedupWindowRidesStream(t *testing.T) {
	leader := openStore(t, t.TempDir())
	defer leader.Close()
	follower, err := OpenWith(t.TempDir(), Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	ev := visit(1, "http://a.example/", "A", "", event.TransTyped, t0)
	if _, err := leader.ApplyBatchDedup([]string{"ingest-1"}, []*event.Event{ev}); err != nil {
		t.Fatal(err)
	}
	shipWAL(t, leader, follower)
	if !follower.SeenEventID("ingest-1") {
		t.Fatal("dedup ID did not ride the replicated record")
	}
}
