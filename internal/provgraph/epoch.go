package provgraph

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"browserprov/internal/graph"
)

// This file implements the epoch-snapshot read path: queries run
// lock-free against an immutable Snapshot while writers keep mutating
// the live store.
//
// The structure mirrors the sealed-block / active-frontier split of
// block-based fast marching: the bulk of the graph — everything older
// than the last seal — lives in a sealedEpoch, CSR-packed flat arrays
// shared by reference across snapshots; only the small unsealed tail
// (nodes and adjacency created or changed since the seal) is captured
// per snapshot. Snapshot cost is therefore O(tail), and the O(n) reseal
// is amortised by only resealing once the tail outgrows a fraction of
// the sealed prefix.
//
// Concurrency contract:
//   - Store.Generation is bumped (atomically, under the store write
//     lock) by every mutation.
//   - Store.Snapshot returns a cached *Snapshot while the generation is
//     unchanged; otherwise it rebuilds one under the store lock.
//   - A Snapshot is deeply immutable. Tail adjacency shares backing
//     arrays with the live store, which is safe because adjacency
//     slices are strictly append-only between seals: the writer may
//     append past a snapshot's slice length but never rewrites the
//     elements a snapshot can see. (Wholesale rewrites — retention —
//     invalidate the epoch and force a full reseal.)
//
// Resealing is incremental and happens off the writers' critical path.
// When the tail outgrows the threshold, the write path captures the
// current tail as an ordinary Snapshot under the lock (O(tail)), swaps
// in fresh dirty sets, and hands the capture to a background goroutine
// that flattens sealed-epoch + tail into the next sealed CSR pack
// (O(n), but off-lock — the capture is immutable, so the flatten never
// synchronises with writers). Meanwhile writers keep appending to a
// fresh overlay: snapshots taken during the build chain over the
// pending capture (tail -> capture tail -> old sealed arrays), so
// readers stay consistent and never observe a half-built epoch. The
// finished epoch is published atomically under a short lock; a
// wholesale rewrite (retention) during the build bumps sealSeq and the
// stale publish is discarded. The writer's worst-case pause is thereby
// O(tail), never the O(nodes+edges) rebuild.

// sealThresholdMin is the smallest tail size that triggers a reseal.
const sealThresholdMin = 1024

// openEnt is one entry of the snapshot's open-time timeline.
type openEnt struct {
	at int64 // unix micros
	id NodeID
}

// sealedEpoch is the immutable CSR-packed core shared across snapshots.
type sealedEpoch struct {
	maxID NodeID
	// nodes is indexed by NodeID (dense from 1); Kind == 0 marks a gap
	// left by retention. nil when the epoch is column-backed (cols set).
	nodes []Node
	// cols, when non-nil, backs the node table with the raw checkpoint
	// columns (typically aliasing a memory-mapped file) instead of a
	// materialised slab; nodeAt reconstructs Node values on demand. The
	// kind-derived lookup maps are then built lazily (see ensureMaps).
	cols *nodeCols
	// csr packs the out-adjacency over node IDs (its in-direction is
	// unused: CSR in-order is From-grouped, which would not preserve
	// the store's insertion order — see inOff below).
	csr *graph.CSR
	// edges is arc-ordered and From-grouped, so the out-edges of n are
	// edges[lo:hi] for (lo, hi) = csr.OutRange(n).
	edges []Edge
	// inOff/inIDs/inEdges pack the in-adjacency in the store's exact
	// insertion order per node, so first-parent choices (rootChain,
	// BFS tie-breaks) are stable across reseals.
	inOff   []uint32
	inIDs   []NodeID
	inEdges []Edge
	// visitsOff/visitIDs are a CSR of per-page visit instance lists.
	visitsOff []uint32
	visitIDs  []NodeID
	urlToPage map[string]NodeID
	termNode  map[string]NodeID // term -> latest instance at seal time
	saveNode  map[string]NodeID // save path -> download
	downloads []NodeID
	// open is every visit sorted by (open time, id) — the snapshot's
	// time index.
	open []openEnt

	// mapsOnce guards the lazy build of urlToPage/termNode/saveNode for
	// column-backed epochs.
	mapsOnce sync.Once
}

// nodeAt returns the node with the given ID (which must be <= maxID).
func (ep *sealedEpoch) nodeAt(id NodeID) (Node, bool) {
	if ep.cols != nil {
		return ep.cols.node(id)
	}
	n := ep.nodes[id]
	return n, n.Kind != 0
}

// kindAt returns the kind of the node with the given ID (0 for gaps).
func (ep *sealedEpoch) kindAt(id NodeID) NodeKind {
	if ep.cols != nil {
		return ep.cols.kind(id)
	}
	return ep.nodes[id].Kind
}

// ensureMaps builds the kind-derived lookup maps of a column-backed
// epoch on first use. Slab-backed epochs populate them at construction,
// so this is a no-op for them. Safe for concurrent use.
func (ep *sealedEpoch) ensureMaps() {
	if ep.cols == nil {
		return
	}
	ep.mapsOnce.Do(func() {
		ep.urlToPage = make(map[string]NodeID, ep.maxID/4+1)
		ep.termNode = make(map[string]NodeID, ep.maxID/16+1)
		ep.saveNode = make(map[string]NodeID)
		// Ascending scan: the latest instance wins for per-term and
		// per-save-path lookups, matching live index semantics.
		for id := NodeID(1); id <= ep.maxID; id++ {
			switch ep.cols.kind(id) {
			case KindPage:
				ep.urlToPage[ep.cols.strAt(ep.cols.urlOff, ep.cols.urlBlob, id)] = id
			case KindSearchTerm:
				ep.termNode[ep.cols.strAt(ep.cols.textOff, ep.cols.textBlob, id)] = id
			case KindDownload:
				ep.saveNode[ep.cols.strAt(ep.cols.textOff, ep.cols.textBlob, id)] = id
			}
		}
	})
}

func (ep *sealedEpoch) pageID(url string) (NodeID, bool) {
	ep.ensureMaps()
	id, ok := ep.urlToPage[url]
	return id, ok
}

func (ep *sealedEpoch) termID(term string) (NodeID, bool) {
	ep.ensureMaps()
	id, ok := ep.termNode[term]
	return id, ok
}

func (ep *sealedEpoch) saveID(path string) (NodeID, bool) {
	ep.ensureMaps()
	id, ok := ep.saveNode[path]
	return id, ok
}

// Snapshot is an immutable, lock-free view of the provenance graph at
// one generation. It implements graph.Graph and mirrors the store's
// read surface, so the query engine can run entirely against it.
type Snapshot struct {
	gen    uint64
	mode   VersioningMode
	maxID  NodeID
	nNodes int
	nEdges int
	sealed *sealedEpoch // nil while the store has never sealed

	// base, when non-nil, is the pending reseal capture this snapshot
	// overlays: it was taken while a background flatten was in flight,
	// and its tail holds only mutations since the capture. Lookups
	// chain tail -> base -> sealed; the chain is at most two deep (a
	// new reseal never starts while one is in flight, and a capture is
	// always taken from a flat snapshot).
	base *Snapshot

	// Tail state: nodes created since the seal (or since the pending
	// capture) plus earlier nodes whose fields, adjacency or visit
	// lists changed. Lookups consult the tail first, then base/sealed.
	tailNodes  map[NodeID]Node
	tailOut    map[NodeID][]Edge
	tailIn     map[NodeID][]Edge
	tailOutIDs map[NodeID][]NodeID
	tailInIDs  map[NodeID][]NodeID
	tailVisits map[NodeID][]NodeID
	tailURL    map[string]NodeID
	tailTerm   map[string]NodeID
	tailSave   map[string]NodeID
	tailDls    []NodeID
	tailOpen   []openEnt

	lensOnce sync.Once
	lens     *SnapLens
}

// Generation returns the store generation the snapshot was taken at.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Snapshot returns an immutable view of the store at its current
// generation. The snapshot is cached: repeated calls without intervening
// mutation return the same pointer, so the fast path is two atomic
// loads. Reading a Snapshot never takes a lock.
func (s *Store) Snapshot() *Snapshot {
	if sn := s.snap.Load(); sn != nil && sn.gen == s.gen.Load() {
		return sn
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked is Snapshot's slow path; the checkpoint capture also
// uses it. Caller holds the write lock.
func (s *Store) snapshotLocked() *Snapshot {
	if sn := s.snap.Load(); sn != nil && sn.gen == s.gen.Load() {
		return sn
	}
	s.maybeReseal()
	// maybeReseal may just have captured (and cached) a flat snapshot
	// of this very generation; don't overwrite it with an equivalent
	// but slower chained one.
	if sn := s.snap.Load(); sn != nil && sn.gen == s.gen.Load() {
		return sn
	}
	sn := s.buildSnapshot()
	s.snap.Store(sn)
	return sn
}

// epochInit prepares the store's epoch-tracking state (called from
// OpenWith before journal recovery).
func (s *Store) epochInit() {
	s.dirtyNode = make(map[NodeID]struct{})
	s.dirtyOut = make(map[NodeID]struct{})
	s.dirtyIn = make(map[NodeID]struct{})
	s.dirtyVisits = make(map[NodeID]struct{})
}

// epochReset discards the sealed epoch after a wholesale rewrite
// (retention). Any in-flight reseal was built from pre-rewrite state:
// bumping sealSeq makes its publish a no-op. Caller holds the write
// lock.
func (s *Store) epochReset() {
	s.sealed = nil
	s.pending = nil
	s.sealSeq++
	s.epochInit()
	s.snap.Store(nil)
}

// sealedMax returns the sealed ID high-water mark (0 when unsealed).
func (s *Store) sealedMax() NodeID {
	if s.sealed == nil {
		return 0
	}
	return s.sealed.maxID
}

// dirtyLimit is the ID boundary dirty tracking is relative to: the
// pending capture's high-water mark while a reseal is in flight
// (mutations of anything the next epoch will cover must be re-overlaid
// on top of it), the published seal's otherwise.
func (s *Store) dirtyLimit() NodeID {
	if s.pending != nil {
		return s.pending.maxID
	}
	return s.sealedMax()
}

// markDirtyNode records an in-place field mutation of a sealed (or
// pending-sealed) node.
func (s *Store) markDirtyNode(id NodeID) {
	if id <= s.dirtyLimit() {
		s.dirtyNode[id] = struct{}{}
	}
}

func (s *Store) tailSize() int {
	return int(s.nextNode-1-s.dirtyLimit()) +
		len(s.dirtyNode) + len(s.dirtyOut) + len(s.dirtyIn) + len(s.dirtyVisits)
}

// sealThreshold grows with the sealed prefix so reseals amortise to
// O(1) per mutation while the tail stays a bounded fraction of the
// whole graph.
func (s *Store) sealThreshold() int {
	t := int(s.sealedMax()) / 8
	if t < sealThresholdMin {
		t = sealThresholdMin
	}
	return t
}

// maybeReseal schedules a background reseal when the tail has outgrown
// the threshold and none is in flight. Caller holds the write lock.
func (s *Store) maybeReseal() {
	if s.sealDone != nil || s.tailSize() <= s.sealThreshold() {
		return
	}
	s.startResealLocked()
}

// startResealLocked captures the current tail (O(tail)) and hands it to
// a background goroutine that flattens it into the next sealed epoch.
// Caller holds the write lock; at most one reseal runs at a time.
func (s *Store) startResealLocked() {
	// The capture is an ordinary snapshot of the current generation.
	// Reuse the cached one only if it is flat (base == nil keeps the
	// overlay chain depth bounded at two).
	sn := s.snap.Load()
	if sn == nil || sn.gen != s.gen.Load() || sn.base != nil {
		sn = s.buildSnapshot()
		s.snap.Store(sn)
	}
	s.pending = sn
	// Fresh overlay: mutations from here on are tracked relative to the
	// capture; the flatten incorporates everything at or below it.
	s.dirtyNode = make(map[NodeID]struct{})
	s.dirtyOut = make(map[NodeID]struct{})
	s.dirtyIn = make(map[NodeID]struct{})
	s.dirtyVisits = make(map[NodeID]struct{})
	s.sealDone = make(chan struct{})
	seq := s.sealSeq
	gate := s.sealGate
	go func() {
		ep := flattenEpoch(sn)
		if gate != nil {
			<-gate // test hook: hold the publish to widen the in-flight window
		}
		s.completeReseal(ep, seq)
	}()
}

// completeReseal publishes a flattened epoch (unless a wholesale
// rewrite invalidated it mid-build) and rebuilds the cached snapshot
// flat on top of it.
func (s *Store) completeReseal(ep *sealedEpoch, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	done := s.sealDone
	s.sealDone = nil
	s.pending = nil
	defer close(done)
	if s.sealSeq != seq {
		return // retention rewrote the graph under the build; discard
	}
	s.sealed = ep
	// Publishing moves the store to a new generation even though no
	// data changed: consumers caching per-generation views (the query
	// engine) must swap their chained capture-overlay snapshots for the
	// flat one, or an idle store would serve the slower chained reads
	// forever.
	s.gen.Add(1)
	sn := s.buildSnapshot()
	s.snap.Store(sn)
	// The epoch just published covers only what its capture saw;
	// everything ingested during the flatten is still tail. Chain the
	// next reseal immediately when that backlog already exceeds the
	// threshold, so sustained ingest drains at flatten speed instead of
	// leaving readers to pay the full inter-reseal delta per snapshot.
	s.maybeReseal()
}

// ForceReseal schedules a background reseal regardless of tail size (a
// no-op if one is already in flight). Tests and benchmarks use it to
// exercise the publish path deterministically.
func (s *Store) ForceReseal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealDone == nil {
		s.startResealLocked()
	}
}

// WaitReseal blocks until no reseal is in flight.
func (s *Store) WaitReseal() {
	for {
		s.mu.RLock()
		done := s.sealDone
		s.mu.RUnlock()
		if done == nil {
			return
		}
		<-done
	}
}

// Sealing reports whether a background reseal is currently in flight.
func (s *Store) Sealing() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sealDone != nil
}

// flattenRowBlock is how many node rows each flattenEpoch loop processes
// between scheduler yields. The flatten runs on a background goroutine
// concurrently with the write path; without the yields its tight O(n)
// loops can monopolise a P for the whole rebuild and starve contended
// foreground queries and ingest (§5 "contended" benchmarks).
const flattenRowBlock = 4096

// flattenEpoch builds the next sealed epoch by merging a capture's
// previous sealed arrays with its tail, reading only through the
// immutable snapshot surface — it runs off-lock, concurrently with
// writers. O(nodes+edges).
func flattenEpoch(sn *Snapshot) *sealedEpoch {
	maxID := sn.maxID
	ep := &sealedEpoch{
		maxID:     maxID,
		nodes:     make([]Node, maxID+1),
		urlToPage: make(map[string]NodeID),
		termNode:  make(map[string]NodeID, maxID/16+1),
		saveNode:  make(map[string]NodeID),
		open:      make([]openEnt, 0, maxID/2+1),
	}
	// Flat node table + kind-derived indexes. The ascending scan makes
	// the latest instance win for per-term and per-save-path lookups,
	// matching the store's "latest wins" index semantics, and collects
	// downloads in creation (= ID) order.
	for id := NodeID(1); id <= maxID; id++ {
		if id%flattenRowBlock == 0 {
			runtime.Gosched()
		}
		n, ok := sn.NodeByID(id)
		if !ok {
			continue // retention gap
		}
		ep.nodes[id] = n
		switch n.Kind {
		case KindPage:
			ep.urlToPage[n.URL] = id
		case KindVisit:
			ep.open = append(ep.open, openEnt{at: n.Open.UnixMicro(), id: id})
		case KindSearchTerm:
			ep.termNode[n.Text] = id
		case KindDownload:
			ep.saveNode[n.Text] = id
			ep.downloads = append(ep.downloads, id)
		}
	}
	sort.Slice(ep.open, func(i, j int) bool {
		if ep.open[i].at != ep.open[j].at {
			return ep.open[i].at < ep.open[j].at
		}
		return ep.open[i].id < ep.open[j].id
	})
	// Out-adjacency: From-grouped arcs so out slot i == arc i and the
	// per-node order matches the store's insertion order.
	numEdges := sn.nEdges
	arcs := make([]graph.Arc, 0, numEdges)
	ep.edges = make([]Edge, 0, numEdges)
	for id := NodeID(1); id <= maxID; id++ {
		if id%flattenRowBlock == 0 {
			runtime.Gosched()
		}
		for _, e := range sn.OutEdges(id) {
			arcs = append(arcs, graph.Arc{From: e.From, To: e.To})
			ep.edges = append(ep.edges, e)
		}
	}
	ep.csr = graph.NewCSR(maxID, arcs)
	// In-adjacency: packed in the capture's per-node insertion order so
	// first-parent choices stay stable across reseals.
	ep.inOff = make([]uint32, maxID+2)
	for id := NodeID(1); id <= maxID; id++ {
		ep.inOff[id+1] = uint32(len(sn.InEdges(id)))
	}
	for i := NodeID(1); i <= maxID+1; i++ {
		ep.inOff[i] += ep.inOff[i-1]
	}
	ep.inIDs = make([]NodeID, len(ep.edges))
	ep.inEdges = make([]Edge, len(ep.edges))
	for id := NodeID(1); id <= maxID; id++ {
		if id%flattenRowBlock == 0 {
			runtime.Gosched()
		}
		o := ep.inOff[id]
		for j, e := range sn.InEdges(id) {
			ep.inIDs[o+uint32(j)] = e.From
			ep.inEdges[o+uint32(j)] = e
		}
	}
	// Per-page visit lists, CSR-packed.
	ep.visitsOff = make([]uint32, maxID+2)
	total := 0
	for id := NodeID(1); id <= maxID; id++ {
		if ep.nodes[id].Kind != KindPage {
			continue
		}
		vs := sn.VisitsOfPage(id)
		ep.visitsOff[id+1] = uint32(len(vs))
		total += len(vs)
	}
	for i := NodeID(1); i <= maxID+1; i++ {
		ep.visitsOff[i] += ep.visitsOff[i-1]
	}
	ep.visitIDs = make([]NodeID, total)
	for id := NodeID(1); id <= maxID; id++ {
		if id%flattenRowBlock == 0 {
			runtime.Gosched()
		}
		if ep.nodes[id].Kind != KindPage {
			continue
		}
		copy(ep.visitIDs[ep.visitsOff[id]:], sn.VisitsOfPage(id))
	}
	return ep
}

// buildSnapshot captures the unsealed tail: everything past the sealed
// epoch, or — while a reseal is in flight — everything past the
// pending capture, which the snapshot then chains over. O(tail); caller
// holds the write lock.
func (s *Store) buildSnapshot() *Snapshot {
	sn := &Snapshot{
		gen:        s.gen.Load(),
		mode:       s.mode,
		maxID:      s.nextNode - 1,
		nNodes:     s.numNodes,
		nEdges:     s.numEdges,
		sealed:     s.sealed,
		base:       s.pending,
		tailNodes:  make(map[NodeID]Node),
		tailOut:    make(map[NodeID][]Edge),
		tailIn:     make(map[NodeID][]Edge),
		tailOutIDs: make(map[NodeID][]NodeID),
		tailInIDs:  make(map[NodeID][]NodeID),
		tailVisits: make(map[NodeID][]NodeID),
		tailURL:    make(map[string]NodeID),
		tailTerm:   make(map[string]NodeID),
		tailSave:   make(map[string]NodeID),
	}
	captureAdj := func(id NodeID) {
		if es := s.outE.at(id); len(es) > 0 {
			sn.tailOut[id] = es
			sn.tailOutIDs[id] = s.outIDs.at(id)
		}
		if es := s.inE.at(id); len(es) > 0 {
			sn.tailIn[id] = es
			sn.tailInIDs[id] = s.inIDs.at(id)
		}
	}
	// New nodes since the seal/capture (IDs are dense, so the tail is a
	// range).
	for id := s.dirtyLimit() + 1; id <= sn.maxID; id++ {
		n, ok := s.nodes[id]
		if !ok {
			continue
		}
		sn.tailNodes[id] = *n
		captureAdj(id)
		switch n.Kind {
		case KindPage:
			sn.tailURL[n.URL] = id
			if vs := s.pageVisits[id]; len(vs) > 0 {
				sn.tailVisits[id] = vs
			}
		case KindVisit:
			sn.tailOpen = append(sn.tailOpen, openEnt{at: n.Open.UnixMicro(), id: id})
		case KindSearchTerm:
			// Ascending scan: the last instance of a term wins, matching
			// the store's latest-instance term index.
			sn.tailTerm[n.Text] = id
		case KindDownload:
			sn.tailSave[n.Text] = id
			sn.tailDls = append(sn.tailDls, id)
		}
	}
	sort.Slice(sn.tailOpen, func(i, j int) bool {
		if sn.tailOpen[i].at != sn.tailOpen[j].at {
			return sn.tailOpen[i].at < sn.tailOpen[j].at
		}
		return sn.tailOpen[i].id < sn.tailOpen[j].id
	})
	// Sealed nodes touched since the seal.
	for id := range s.dirtyNode {
		sn.tailNodes[id] = *s.nodes[id]
	}
	for id := range s.dirtyOut {
		sn.tailOut[id] = s.outE.at(id)
		sn.tailOutIDs[id] = s.outIDs.at(id)
	}
	for id := range s.dirtyIn {
		sn.tailIn[id] = s.inE.at(id)
		sn.tailInIDs[id] = s.inIDs.at(id)
	}
	for page := range s.dirtyVisits {
		sn.tailVisits[page] = s.pageVisits[page]
	}
	return sn
}

// ---- Snapshot read surface ----

// Generation returns the generation the snapshot captures.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Mode returns the store's versioning mode.
func (sn *Snapshot) Mode() VersioningMode { return sn.mode }

// MaxNodeID returns the highest node ID in the snapshot — the watermark
// for incremental consumers (see NodesSince).
func (sn *Snapshot) MaxNodeID() NodeID { return sn.maxID }

// NumNodes returns the number of live nodes.
func (sn *Snapshot) NumNodes() int { return sn.nNodes }

// NumEdges returns the number of edges.
func (sn *Snapshot) NumEdges() int { return sn.nEdges }

// NodeByID returns the node with the given ID.
func (sn *Snapshot) NodeByID(id NodeID) (Node, bool) {
	if n, ok := sn.tailNodes[id]; ok {
		return n, true
	}
	if sn.base != nil {
		return sn.base.NodeByID(id)
	}
	if sn.sealed != nil && id <= sn.sealed.maxID {
		return sn.sealed.nodeAt(id)
	}
	return Node{}, false
}

// NodesSince streams every node with ID > watermark in ID order,
// stopping early if fn returns false. This is the incremental-indexing
// hook: consumers remember MaxNodeID as their watermark and only ever
// visit the delta.
func (sn *Snapshot) NodesSince(watermark NodeID, fn func(Node) bool) {
	for id := watermark + 1; id <= sn.maxID; id++ {
		if n, ok := sn.NodeByID(id); ok {
			if !fn(n) {
				return
			}
		}
	}
}

// Out implements graph.Graph. The returned slice is shared; do not
// modify.
func (sn *Snapshot) Out(n NodeID) []NodeID {
	if ids, ok := sn.tailOutIDs[n]; ok {
		return ids
	}
	if sn.base != nil {
		return sn.base.Out(n)
	}
	if sn.sealed != nil {
		return sn.sealed.csr.Out(n)
	}
	return nil
}

// In implements graph.Graph. The returned slice is shared; do not
// modify.
func (sn *Snapshot) In(n NodeID) []NodeID {
	if ids, ok := sn.tailInIDs[n]; ok {
		return ids
	}
	if sn.base != nil {
		return sn.base.In(n)
	}
	if sn.sealed != nil && n <= sn.sealed.maxID {
		return sn.sealed.inIDs[sn.sealed.inOff[n]:sn.sealed.inOff[n+1]]
	}
	return nil
}

// OutEdges returns n's outgoing edges. The slice is shared; do not
// modify.
func (sn *Snapshot) OutEdges(n NodeID) []Edge {
	if es, ok := sn.tailOut[n]; ok {
		return es
	}
	if sn.base != nil {
		return sn.base.OutEdges(n)
	}
	if sn.sealed != nil && n <= sn.sealed.maxID {
		lo, hi := sn.sealed.csr.OutRange(n)
		return sn.sealed.edges[lo:hi]
	}
	return nil
}

// InEdges returns n's incoming edges. The slice is shared; do not
// modify.
func (sn *Snapshot) InEdges(n NodeID) []Edge {
	if es, ok := sn.tailIn[n]; ok {
		return es
	}
	if sn.base != nil {
		return sn.base.InEdges(n)
	}
	if sn.sealed != nil && n <= sn.sealed.maxID {
		return sn.sealed.inEdges[sn.sealed.inOff[n]:sn.sealed.inOff[n+1]]
	}
	return nil
}

// PageByURL returns the page identity node for url.
func (sn *Snapshot) PageByURL(url string) (Node, bool) {
	if id, ok := sn.tailURL[url]; ok {
		return sn.NodeByID(id)
	}
	if sn.base != nil {
		return sn.base.PageByURL(url)
	}
	if sn.sealed != nil {
		if id, ok := sn.sealed.pageID(url); ok {
			return sn.NodeByID(id)
		}
	}
	return Node{}, false
}

// TermNode returns the latest search-term instance for the exact term
// string.
func (sn *Snapshot) TermNode(term string) (Node, bool) {
	if id, ok := sn.tailTerm[term]; ok {
		return sn.NodeByID(id)
	}
	if sn.base != nil {
		return sn.base.TermNode(term)
	}
	if sn.sealed != nil {
		if id, ok := sn.sealed.termID(term); ok {
			return sn.NodeByID(id)
		}
	}
	return Node{}, false
}

// DownloadBySavePath returns the download node saved at path.
func (sn *Snapshot) DownloadBySavePath(path string) (Node, bool) {
	if id, ok := sn.tailSave[path]; ok {
		return sn.NodeByID(id)
	}
	if sn.base != nil {
		return sn.base.DownloadBySavePath(path)
	}
	if sn.sealed != nil {
		if id, ok := sn.sealed.saveID(path); ok {
			return sn.NodeByID(id)
		}
	}
	return Node{}, false
}

// Downloads returns the IDs of every download node in creation order.
func (sn *Snapshot) Downloads() []NodeID {
	var lower []NodeID
	if sn.base != nil {
		lower = sn.base.Downloads()
	} else if sn.sealed != nil {
		lower = sn.sealed.downloads
	}
	if len(sn.tailDls) == 0 {
		return lower
	}
	out := make([]NodeID, 0, len(lower)+len(sn.tailDls))
	out = append(out, lower...)
	return append(out, sn.tailDls...)
}

// VisitsOfPage returns the visit instance IDs of a page in visit order.
// The slice is shared; do not modify.
func (sn *Snapshot) VisitsOfPage(page NodeID) []NodeID {
	if vs, ok := sn.tailVisits[page]; ok {
		return vs
	}
	if sn.base != nil {
		return sn.base.VisitsOfPage(page)
	}
	if sn.sealed != nil && page <= sn.sealed.maxID {
		return sn.sealed.visitIDs[sn.sealed.visitsOff[page]:sn.sealed.visitsOff[page+1]]
	}
	return nil
}

// VisitCount mirrors Store.VisitCount over the snapshot.
func (sn *Snapshot) VisitCount(page NodeID) int {
	if sn.mode == VersionEdges {
		n := len(sn.In(page))
		if n == 0 {
			if _, ok := sn.NodeByID(page); ok {
				return 1
			}
		}
		return n
	}
	return len(sn.VisitsOfPage(page))
}

// OpenBetween returns visit nodes whose open time t satisfies
// lo <= t < hi, in (open, id) order.
func (sn *Snapshot) OpenBetween(lo, hi time.Time) []NodeID {
	ents := sn.openEnts(lo.UnixMicro(), hi.UnixMicro())
	out := make([]NodeID, len(ents))
	for i, e := range ents {
		out[i] = e.id
	}
	return out
}

// openEnts returns the snapshot's (open, id)-ordered visit entries in
// [lo, hi), merging the sealed timeline, any pending capture's tail,
// and the snapshot's own tail. Events may arrive with out-of-order
// timestamps, so the runs can interleave.
func (sn *Snapshot) openEnts(loU, hiU int64) []openEnt {
	var lower []openEnt
	if sn.base != nil {
		lower = sn.base.openEnts(loU, hiU)
	} else if sn.sealed != nil {
		lower = openRange(sn.sealed.open, loU, hiU)
	}
	tail := openRange(sn.tailOpen, loU, hiU)
	if len(tail) == 0 {
		return lower
	}
	if len(lower) == 0 {
		return tail
	}
	out := make([]openEnt, 0, len(lower)+len(tail))
	i, j := 0, 0
	for i < len(lower) && j < len(tail) {
		if lower[i].at < tail[j].at || (lower[i].at == tail[j].at && lower[i].id < tail[j].id) {
			out = append(out, lower[i])
			i++
		} else {
			out = append(out, tail[j])
			j++
		}
	}
	out = append(out, lower[i:]...)
	return append(out, tail[j:]...)
}

// openRange returns the subrange of ents with lo <= at < hi.
func openRange(ents []openEnt, lo, hi int64) []openEnt {
	a := sort.Search(len(ents), func(i int) bool { return ents[i].at >= lo })
	b := sort.Search(len(ents), func(i int) bool { return ents[i].at >= hi })
	return ents[a:b]
}

var _ graph.Graph = (*Snapshot)(nil)
var _ graph.Bounded = (*Snapshot)(nil)

// ---- snapshot lens ----

// SnapLens is the redirect-splicing personalisation lens (§3.2) over an
// immutable snapshot. Unlike the store Lens it takes no locks and its
// redirect-resolution memo table is shared by every query on the same
// epoch: chains are resolved once per generation, not once per query.
// It is safe for concurrent use.
type SnapLens struct {
	sn       *Snapshot
	resolved sync.Map // NodeID -> NodeID
}

// Lens returns the snapshot's personalisation lens, building it on
// first use. The same lens (and memo table) is returned for the
// snapshot's whole lifetime.
func (sn *Snapshot) Lens() *SnapLens {
	sn.lensOnce.Do(func() { sn.lens = &SnapLens{sn: sn} })
	return sn.lens
}

// spliced reports whether n is removed from the unified view: a node
// from which a redirect occurs.
func (l *SnapLens) spliced(n NodeID) bool {
	for _, e := range l.sn.OutEdges(n) {
		if e.Kind == EdgeRedirectPermanent || e.Kind == EdgeRedirectTemporary {
			return true
		}
	}
	return false
}

// resolve follows redirect out-edges from n to the final
// non-redirecting node, memoised per epoch.
func (l *SnapLens) resolve(n NodeID) NodeID {
	if r, ok := l.resolved.Load(n); ok {
		return r.(NodeID)
	}
	cur := n
	for hops := 0; hops < 32; hops++ {
		next := NodeID(0)
		for _, e := range l.sn.OutEdges(cur) {
			if e.Kind == EdgeRedirectPermanent || e.Kind == EdgeRedirectTemporary {
				next = e.To
				break
			}
		}
		if next == 0 {
			break
		}
		cur = next
	}
	l.resolved.Store(n, cur)
	return cur
}

// Out implements graph.Graph: successors with embeds dropped and
// redirect targets resolved to their chain ends.
func (l *SnapLens) Out(n NodeID) []NodeID { return l.AppendOut(n, nil) }

// AppendOut implements graph.Appender: the lens materialises adjacency
// on the fly, so hot traversals hand it their reusable buffer instead
// of paying an allocation per visited node.
func (l *SnapLens) AppendOut(n NodeID, buf []NodeID) []NodeID {
	for _, e := range l.sn.OutEdges(n) {
		if e.Kind == EdgeEmbed || e.Kind == EdgeFramedLink {
			continue
		}
		t := l.resolve(e.To)
		if t != n {
			buf = append(buf, t)
		}
	}
	return buf
}

// In implements graph.Graph: predecessors with embeds dropped and
// spliced (redirecting) predecessors replaced by their own
// predecessors, transitively.
func (l *SnapLens) In(n NodeID) []NodeID { return l.AppendIn(n, nil) }

// AppendIn implements graph.Appender.
func (l *SnapLens) AppendIn(n NodeID, buf []NodeID) []NodeID {
	return l.appendIn(n, buf, 0)
}

func (l *SnapLens) appendIn(n NodeID, buf []NodeID, depth int) []NodeID {
	if depth > 32 {
		return buf
	}
	for _, e := range l.sn.InEdges(n) {
		if e.Kind == EdgeEmbed || e.Kind == EdgeFramedLink {
			continue
		}
		if l.spliced(e.From) {
			buf = l.appendIn(e.From, buf, depth+1)
			continue
		}
		buf = append(buf, e.From)
	}
	return buf
}

// MaxNodeID implements graph.Bounded: the lens spans the same dense ID
// space as its snapshot, so dense traversal scratch applies through it.
func (l *SnapLens) MaxNodeID() NodeID { return l.sn.maxID }

var _ graph.Graph = (*SnapLens)(nil)
var _ graph.Appender = (*SnapLens)(nil)
var _ graph.Bounded = (*SnapLens)(nil)
