package provgraph

import (
	"sort"
	"sync"
	"time"

	"browserprov/internal/graph"
)

// This file implements the epoch-snapshot read path: queries run
// lock-free against an immutable Snapshot while writers keep mutating
// the live store.
//
// The structure mirrors the sealed-block / active-frontier split of
// block-based fast marching: the bulk of the graph — everything older
// than the last seal — lives in a sealedEpoch, CSR-packed flat arrays
// shared by reference across snapshots; only the small unsealed tail
// (nodes and adjacency created or changed since the seal) is captured
// per snapshot. Snapshot cost is therefore O(tail), and the O(n) reseal
// is amortised by only resealing once the tail outgrows a fraction of
// the sealed prefix.
//
// Concurrency contract:
//   - Store.Generation is bumped (atomically, under the store write
//     lock) by every mutation.
//   - Store.Snapshot returns a cached *Snapshot while the generation is
//     unchanged; otherwise it rebuilds one under the store lock.
//   - A Snapshot is deeply immutable. Tail adjacency shares backing
//     arrays with the live store, which is safe because adjacency
//     slices are strictly append-only between seals: the writer may
//     append past a snapshot's slice length but never rewrites the
//     elements a snapshot can see. (Wholesale rewrites — retention —
//     invalidate the epoch and force a full reseal.)

// sealThresholdMin is the smallest tail size that triggers a reseal.
const sealThresholdMin = 1024

// openEnt is one entry of the snapshot's open-time timeline.
type openEnt struct {
	at int64 // unix micros
	id NodeID
}

// sealedEpoch is the immutable CSR-packed core shared across snapshots.
type sealedEpoch struct {
	maxID NodeID
	// nodes is indexed by NodeID (dense from 1); Kind == 0 marks a gap
	// left by retention.
	nodes []Node
	// csr packs the out-adjacency over node IDs (its in-direction is
	// unused: CSR in-order is From-grouped, which would not preserve
	// the store's insertion order — see inOff below).
	csr *graph.CSR
	// edges is arc-ordered and From-grouped, so the out-edges of n are
	// edges[lo:hi] for (lo, hi) = csr.OutRange(n).
	edges []Edge
	// inOff/inIDs/inEdges pack the in-adjacency in the store's exact
	// insertion order per node, so first-parent choices (rootChain,
	// BFS tie-breaks) are stable across reseals.
	inOff   []uint32
	inIDs   []NodeID
	inEdges []Edge
	// visitsOff/visitIDs are a CSR of per-page visit instance lists.
	visitsOff []uint32
	visitIDs  []NodeID
	urlToPage map[string]NodeID
	termNode  map[string]NodeID // term -> latest instance at seal time
	saveNode  map[string]NodeID // save path -> download
	downloads []NodeID
	// open is every visit sorted by (open time, id) — the snapshot's
	// time index.
	open []openEnt
}

// Snapshot is an immutable, lock-free view of the provenance graph at
// one generation. It implements graph.Graph and mirrors the store's
// read surface, so the query engine can run entirely against it.
type Snapshot struct {
	gen    uint64
	mode   VersioningMode
	maxID  NodeID
	nNodes int
	nEdges int
	sealed *sealedEpoch // nil while the store has never sealed

	// Tail state: nodes created since the seal plus sealed nodes whose
	// fields, adjacency or visit lists changed. Lookups consult the
	// tail first, then the sealed arrays.
	tailNodes  map[NodeID]Node
	tailOut    map[NodeID][]Edge
	tailIn     map[NodeID][]Edge
	tailOutIDs map[NodeID][]NodeID
	tailInIDs  map[NodeID][]NodeID
	tailVisits map[NodeID][]NodeID
	tailURL    map[string]NodeID
	tailTerm   map[string]NodeID
	tailSave   map[string]NodeID
	tailDls    []NodeID
	tailOpen   []openEnt

	lensOnce sync.Once
	lens     *SnapLens
}

// Generation returns the store generation the snapshot was taken at.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Snapshot returns an immutable view of the store at its current
// generation. The snapshot is cached: repeated calls without intervening
// mutation return the same pointer, so the fast path is two atomic
// loads. Reading a Snapshot never takes a lock.
func (s *Store) Snapshot() *Snapshot {
	if sn := s.snap.Load(); sn != nil && sn.gen == s.gen.Load() {
		return sn
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn := s.snap.Load(); sn != nil && sn.gen == s.gen.Load() {
		return sn
	}
	if s.tailSize() > s.sealThreshold() {
		s.reseal()
	}
	sn := s.buildSnapshot()
	s.snap.Store(sn)
	return sn
}

// epochInit prepares the store's epoch-tracking state (called from
// OpenWith before journal recovery).
func (s *Store) epochInit() {
	s.dirtyNode = make(map[NodeID]struct{})
	s.dirtyOut = make(map[NodeID]struct{})
	s.dirtyIn = make(map[NodeID]struct{})
	s.dirtyVisits = make(map[NodeID]struct{})
}

// epochReset discards the sealed epoch after a wholesale rewrite
// (retention). Caller holds the write lock.
func (s *Store) epochReset() {
	s.sealed = nil
	s.epochInit()
	s.snap.Store(nil)
}

// sealedMax returns the sealed ID high-water mark (0 when unsealed).
func (s *Store) sealedMax() NodeID {
	if s.sealed == nil {
		return 0
	}
	return s.sealed.maxID
}

// markDirtyNode records an in-place field mutation of a sealed node.
func (s *Store) markDirtyNode(id NodeID) {
	if s.sealed != nil && id <= s.sealed.maxID {
		s.dirtyNode[id] = struct{}{}
	}
}

func (s *Store) tailSize() int {
	return int(s.nextNode-1-s.sealedMax()) +
		len(s.dirtyNode) + len(s.dirtyOut) + len(s.dirtyIn) + len(s.dirtyVisits)
}

// sealThreshold grows with the sealed prefix so reseals amortise to
// O(1) per mutation while the tail stays a bounded fraction of the
// whole graph.
func (s *Store) sealThreshold() int {
	t := int(s.sealedMax()) / 8
	if t < sealThresholdMin {
		t = sealThresholdMin
	}
	return t
}

// reseal rebuilds the sealed epoch from the live maps. O(nodes+edges);
// caller holds the write lock.
func (s *Store) reseal() {
	maxID := s.nextNode - 1
	ep := &sealedEpoch{
		maxID:     maxID,
		nodes:     make([]Node, maxID+1),
		urlToPage: make(map[string]NodeID),
		termNode:  make(map[string]NodeID, len(s.nodes)/16),
		saveNode:  make(map[string]NodeID, len(s.saveIndex)),
		downloads: append([]NodeID(nil), s.downloads...),
	}
	// Flat node table + kind-derived indexes.
	for id, n := range s.nodes {
		ep.nodes[id] = *n
		switch n.Kind {
		case KindPage:
			ep.urlToPage[n.URL] = id
		case KindVisit:
			ep.open = append(ep.open, openEnt{at: n.Open.UnixMicro(), id: id})
		}
	}
	sort.Slice(ep.open, func(i, j int) bool {
		if ep.open[i].at != ep.open[j].at {
			return ep.open[i].at < ep.open[j].at
		}
		return ep.open[i].id < ep.open[j].id
	})
	// The term index maps each term to its latest instance; copy it
	// rather than deriving from node order so VisitSeq-bumping reissues
	// resolve identically to the store.
	s.termIndex.Ascend(func(k []byte, v uint64) bool {
		ep.termNode[string(k)] = NodeID(v)
		return true
	})
	for p, id := range s.saveIndex {
		ep.saveNode[p] = id
	}
	// Out-adjacency: From-grouped arcs so out slot i == arc i and the
	// per-node order matches the store's insertion order.
	arcs := make([]graph.Arc, 0, s.numEdges)
	ep.edges = make([]Edge, 0, s.numEdges)
	for id := NodeID(1); id <= maxID; id++ {
		for _, e := range s.outE[id] {
			arcs = append(arcs, graph.Arc{From: e.From, To: e.To})
			ep.edges = append(ep.edges, e)
		}
	}
	ep.csr = graph.NewCSR(maxID, arcs)
	// In-adjacency: packed straight from the live in-edge lists so the
	// per-node insertion order is preserved exactly.
	ep.inOff = make([]uint32, maxID+2)
	for id := NodeID(1); id <= maxID; id++ {
		ep.inOff[id+1] = uint32(len(s.inE[id]))
	}
	for i := NodeID(1); i <= maxID+1; i++ {
		ep.inOff[i] += ep.inOff[i-1]
	}
	ep.inIDs = make([]NodeID, s.numEdges)
	ep.inEdges = make([]Edge, s.numEdges)
	for id := NodeID(1); id <= maxID; id++ {
		o := ep.inOff[id]
		for j, e := range s.inE[id] {
			ep.inIDs[o+uint32(j)] = e.From
			ep.inEdges[o+uint32(j)] = e
		}
	}
	// Per-page visit lists, CSR-packed.
	ep.visitsOff = make([]uint32, maxID+2)
	total := 0
	for page, vs := range s.pageVisits {
		ep.visitsOff[page+1] = uint32(len(vs))
		total += len(vs)
	}
	for i := NodeID(1); i <= maxID+1; i++ {
		ep.visitsOff[i] += ep.visitsOff[i-1]
	}
	ep.visitIDs = make([]NodeID, total)
	for page, vs := range s.pageVisits {
		copy(ep.visitIDs[ep.visitsOff[page]:], vs)
	}

	s.sealed = ep
	s.dirtyNode = make(map[NodeID]struct{})
	s.dirtyOut = make(map[NodeID]struct{})
	s.dirtyIn = make(map[NodeID]struct{})
	s.dirtyVisits = make(map[NodeID]struct{})
}

// buildSnapshot captures the unsealed tail. O(tail); caller holds the
// write lock.
func (s *Store) buildSnapshot() *Snapshot {
	sn := &Snapshot{
		gen:        s.gen.Load(),
		mode:       s.mode,
		maxID:      s.nextNode - 1,
		nNodes:     len(s.nodes),
		nEdges:     s.numEdges,
		sealed:     s.sealed,
		tailNodes:  make(map[NodeID]Node),
		tailOut:    make(map[NodeID][]Edge),
		tailIn:     make(map[NodeID][]Edge),
		tailOutIDs: make(map[NodeID][]NodeID),
		tailInIDs:  make(map[NodeID][]NodeID),
		tailVisits: make(map[NodeID][]NodeID),
		tailURL:    make(map[string]NodeID),
		tailTerm:   make(map[string]NodeID),
		tailSave:   make(map[string]NodeID),
	}
	captureAdj := func(id NodeID) {
		if es := s.outE[id]; len(es) > 0 {
			sn.tailOut[id] = es
			sn.tailOutIDs[id] = s.outIDs[id]
		}
		if es := s.inE[id]; len(es) > 0 {
			sn.tailIn[id] = es
			sn.tailInIDs[id] = s.inIDs[id]
		}
	}
	// New nodes since the seal (IDs are dense, so the tail is a range).
	for id := s.sealedMax() + 1; id <= sn.maxID; id++ {
		n, ok := s.nodes[id]
		if !ok {
			continue
		}
		sn.tailNodes[id] = *n
		captureAdj(id)
		switch n.Kind {
		case KindPage:
			sn.tailURL[n.URL] = id
			if vs := s.pageVisits[id]; len(vs) > 0 {
				sn.tailVisits[id] = vs
			}
		case KindVisit:
			sn.tailOpen = append(sn.tailOpen, openEnt{at: n.Open.UnixMicro(), id: id})
		case KindSearchTerm:
			// Ascending scan: the last instance of a term wins, matching
			// the store's latest-instance term index.
			sn.tailTerm[n.Text] = id
		case KindDownload:
			sn.tailSave[n.Text] = id
			sn.tailDls = append(sn.tailDls, id)
		}
	}
	sort.Slice(sn.tailOpen, func(i, j int) bool {
		if sn.tailOpen[i].at != sn.tailOpen[j].at {
			return sn.tailOpen[i].at < sn.tailOpen[j].at
		}
		return sn.tailOpen[i].id < sn.tailOpen[j].id
	})
	// Sealed nodes touched since the seal.
	for id := range s.dirtyNode {
		sn.tailNodes[id] = *s.nodes[id]
	}
	for id := range s.dirtyOut {
		sn.tailOut[id] = s.outE[id]
		sn.tailOutIDs[id] = s.outIDs[id]
	}
	for id := range s.dirtyIn {
		sn.tailIn[id] = s.inE[id]
		sn.tailInIDs[id] = s.inIDs[id]
	}
	for page := range s.dirtyVisits {
		sn.tailVisits[page] = s.pageVisits[page]
	}
	return sn
}

// ---- Snapshot read surface ----

// Generation returns the generation the snapshot captures.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Mode returns the store's versioning mode.
func (sn *Snapshot) Mode() VersioningMode { return sn.mode }

// MaxNodeID returns the highest node ID in the snapshot — the watermark
// for incremental consumers (see NodesSince).
func (sn *Snapshot) MaxNodeID() NodeID { return sn.maxID }

// NumNodes returns the number of live nodes.
func (sn *Snapshot) NumNodes() int { return sn.nNodes }

// NumEdges returns the number of edges.
func (sn *Snapshot) NumEdges() int { return sn.nEdges }

// NodeByID returns the node with the given ID.
func (sn *Snapshot) NodeByID(id NodeID) (Node, bool) {
	if n, ok := sn.tailNodes[id]; ok {
		return n, true
	}
	if sn.sealed != nil && id <= sn.sealed.maxID {
		n := sn.sealed.nodes[id]
		return n, n.Kind != 0
	}
	return Node{}, false
}

// NodesSince streams every node with ID > watermark in ID order,
// stopping early if fn returns false. This is the incremental-indexing
// hook: consumers remember MaxNodeID as their watermark and only ever
// visit the delta.
func (sn *Snapshot) NodesSince(watermark NodeID, fn func(Node) bool) {
	for id := watermark + 1; id <= sn.maxID; id++ {
		if n, ok := sn.NodeByID(id); ok {
			if !fn(n) {
				return
			}
		}
	}
}

// Out implements graph.Graph. The returned slice is shared; do not
// modify.
func (sn *Snapshot) Out(n NodeID) []NodeID {
	if ids, ok := sn.tailOutIDs[n]; ok {
		return ids
	}
	if sn.sealed != nil {
		return sn.sealed.csr.Out(n)
	}
	return nil
}

// In implements graph.Graph. The returned slice is shared; do not
// modify.
func (sn *Snapshot) In(n NodeID) []NodeID {
	if ids, ok := sn.tailInIDs[n]; ok {
		return ids
	}
	if sn.sealed != nil && n <= sn.sealed.maxID {
		return sn.sealed.inIDs[sn.sealed.inOff[n]:sn.sealed.inOff[n+1]]
	}
	return nil
}

// OutEdges returns n's outgoing edges. The slice is shared; do not
// modify.
func (sn *Snapshot) OutEdges(n NodeID) []Edge {
	if es, ok := sn.tailOut[n]; ok {
		return es
	}
	if sn.sealed != nil && n <= sn.sealed.maxID {
		lo, hi := sn.sealed.csr.OutRange(n)
		return sn.sealed.edges[lo:hi]
	}
	return nil
}

// InEdges returns n's incoming edges. The slice is shared; do not
// modify.
func (sn *Snapshot) InEdges(n NodeID) []Edge {
	if es, ok := sn.tailIn[n]; ok {
		return es
	}
	if sn.sealed != nil && n <= sn.sealed.maxID {
		return sn.sealed.inEdges[sn.sealed.inOff[n]:sn.sealed.inOff[n+1]]
	}
	return nil
}

// PageByURL returns the page identity node for url.
func (sn *Snapshot) PageByURL(url string) (Node, bool) {
	if id, ok := sn.tailURL[url]; ok {
		return sn.NodeByID(id)
	}
	if sn.sealed != nil {
		if id, ok := sn.sealed.urlToPage[url]; ok {
			return sn.NodeByID(id)
		}
	}
	return Node{}, false
}

// TermNode returns the latest search-term instance for the exact term
// string.
func (sn *Snapshot) TermNode(term string) (Node, bool) {
	if id, ok := sn.tailTerm[term]; ok {
		return sn.NodeByID(id)
	}
	if sn.sealed != nil {
		if id, ok := sn.sealed.termNode[term]; ok {
			return sn.NodeByID(id)
		}
	}
	return Node{}, false
}

// DownloadBySavePath returns the download node saved at path.
func (sn *Snapshot) DownloadBySavePath(path string) (Node, bool) {
	if id, ok := sn.tailSave[path]; ok {
		return sn.NodeByID(id)
	}
	if sn.sealed != nil {
		if id, ok := sn.sealed.saveNode[path]; ok {
			return sn.NodeByID(id)
		}
	}
	return Node{}, false
}

// Downloads returns the IDs of every download node in creation order.
func (sn *Snapshot) Downloads() []NodeID {
	var sealed []NodeID
	if sn.sealed != nil {
		sealed = sn.sealed.downloads
	}
	if len(sn.tailDls) == 0 {
		return sealed
	}
	out := make([]NodeID, 0, len(sealed)+len(sn.tailDls))
	out = append(out, sealed...)
	return append(out, sn.tailDls...)
}

// VisitsOfPage returns the visit instance IDs of a page in visit order.
// The slice is shared; do not modify.
func (sn *Snapshot) VisitsOfPage(page NodeID) []NodeID {
	if vs, ok := sn.tailVisits[page]; ok {
		return vs
	}
	if sn.sealed != nil && page <= sn.sealed.maxID {
		return sn.sealed.visitIDs[sn.sealed.visitsOff[page]:sn.sealed.visitsOff[page+1]]
	}
	return nil
}

// VisitCount mirrors Store.VisitCount over the snapshot.
func (sn *Snapshot) VisitCount(page NodeID) int {
	if sn.mode == VersionEdges {
		n := len(sn.In(page))
		if n == 0 {
			if _, ok := sn.NodeByID(page); ok {
				return 1
			}
		}
		return n
	}
	return len(sn.VisitsOfPage(page))
}

// OpenBetween returns visit nodes whose open time t satisfies
// lo <= t < hi, in (open, id) order.
func (sn *Snapshot) OpenBetween(lo, hi time.Time) []NodeID {
	loU, hiU := lo.UnixMicro(), hi.UnixMicro()
	var sealed, tail []openEnt
	if sn.sealed != nil {
		sealed = openRange(sn.sealed.open, loU, hiU)
	}
	tail = openRange(sn.tailOpen, loU, hiU)
	out := make([]NodeID, 0, len(sealed)+len(tail))
	// Merge the two sorted runs; events may arrive with out-of-order
	// timestamps, so the tail can interleave with the sealed range.
	i, j := 0, 0
	for i < len(sealed) && j < len(tail) {
		if sealed[i].at < tail[j].at || (sealed[i].at == tail[j].at && sealed[i].id < tail[j].id) {
			out = append(out, sealed[i].id)
			i++
		} else {
			out = append(out, tail[j].id)
			j++
		}
	}
	for ; i < len(sealed); i++ {
		out = append(out, sealed[i].id)
	}
	for ; j < len(tail); j++ {
		out = append(out, tail[j].id)
	}
	return out
}

// openRange returns the subrange of ents with lo <= at < hi.
func openRange(ents []openEnt, lo, hi int64) []openEnt {
	a := sort.Search(len(ents), func(i int) bool { return ents[i].at >= lo })
	b := sort.Search(len(ents), func(i int) bool { return ents[i].at >= hi })
	return ents[a:b]
}

var _ graph.Graph = (*Snapshot)(nil)
var _ graph.Bounded = (*Snapshot)(nil)

// ---- snapshot lens ----

// SnapLens is the redirect-splicing personalisation lens (§3.2) over an
// immutable snapshot. Unlike the store Lens it takes no locks and its
// redirect-resolution memo table is shared by every query on the same
// epoch: chains are resolved once per generation, not once per query.
// It is safe for concurrent use.
type SnapLens struct {
	sn       *Snapshot
	resolved sync.Map // NodeID -> NodeID
}

// Lens returns the snapshot's personalisation lens, building it on
// first use. The same lens (and memo table) is returned for the
// snapshot's whole lifetime.
func (sn *Snapshot) Lens() *SnapLens {
	sn.lensOnce.Do(func() { sn.lens = &SnapLens{sn: sn} })
	return sn.lens
}

// spliced reports whether n is removed from the unified view: a node
// from which a redirect occurs.
func (l *SnapLens) spliced(n NodeID) bool {
	for _, e := range l.sn.OutEdges(n) {
		if e.Kind == EdgeRedirectPermanent || e.Kind == EdgeRedirectTemporary {
			return true
		}
	}
	return false
}

// resolve follows redirect out-edges from n to the final
// non-redirecting node, memoised per epoch.
func (l *SnapLens) resolve(n NodeID) NodeID {
	if r, ok := l.resolved.Load(n); ok {
		return r.(NodeID)
	}
	cur := n
	for hops := 0; hops < 32; hops++ {
		next := NodeID(0)
		for _, e := range l.sn.OutEdges(cur) {
			if e.Kind == EdgeRedirectPermanent || e.Kind == EdgeRedirectTemporary {
				next = e.To
				break
			}
		}
		if next == 0 {
			break
		}
		cur = next
	}
	l.resolved.Store(n, cur)
	return cur
}

// Out implements graph.Graph: successors with embeds dropped and
// redirect targets resolved to their chain ends.
func (l *SnapLens) Out(n NodeID) []NodeID { return l.AppendOut(n, nil) }

// AppendOut implements graph.Appender: the lens materialises adjacency
// on the fly, so hot traversals hand it their reusable buffer instead
// of paying an allocation per visited node.
func (l *SnapLens) AppendOut(n NodeID, buf []NodeID) []NodeID {
	for _, e := range l.sn.OutEdges(n) {
		if e.Kind == EdgeEmbed || e.Kind == EdgeFramedLink {
			continue
		}
		t := l.resolve(e.To)
		if t != n {
			buf = append(buf, t)
		}
	}
	return buf
}

// In implements graph.Graph: predecessors with embeds dropped and
// spliced (redirecting) predecessors replaced by their own
// predecessors, transitively.
func (l *SnapLens) In(n NodeID) []NodeID { return l.AppendIn(n, nil) }

// AppendIn implements graph.Appender.
func (l *SnapLens) AppendIn(n NodeID, buf []NodeID) []NodeID {
	return l.appendIn(n, buf, 0)
}

func (l *SnapLens) appendIn(n NodeID, buf []NodeID, depth int) []NodeID {
	if depth > 32 {
		return buf
	}
	for _, e := range l.sn.InEdges(n) {
		if e.Kind == EdgeEmbed || e.Kind == EdgeFramedLink {
			continue
		}
		if l.spliced(e.From) {
			buf = l.appendIn(e.From, buf, depth+1)
			continue
		}
		buf = append(buf, e.From)
	}
	return buf
}

// MaxNodeID implements graph.Bounded: the lens spans the same dense ID
// space as its snapshot, so dense traversal scratch applies through it.
func (l *SnapLens) MaxNodeID() NodeID { return l.sn.maxID }

var _ graph.Graph = (*SnapLens)(nil)
var _ graph.Appender = (*SnapLens)(nil)
var _ graph.Bounded = (*SnapLens)(nil)
