package provgraph

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"browserprov/internal/event"
)

// genEvents builds a deterministic mixed workload (visits with cross
// references, closes, searches, downloads, bookmarks, redirects) with
// no store involved, so the same sequence can feed several stores.
func genIngestEvents(n int, base time.Time) []*event.Event {
	evs := make([]*event.Event, 0, n+n/4)
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		url := fmt.Sprintf("http://site%d.example/p%d", i%7, i%53)
		evs = append(evs, &event.Event{Time: at, Type: event.TypeVisit, Tab: 1 + i%3,
			URL: url, Title: fmt.Sprintf("Page %d", i%53), Transition: event.TransTyped})
		switch i % 9 {
		case 1:
			evs = append(evs, &event.Event{Time: at.Add(time.Second), Type: event.TypeVisit, Tab: 1 + i%3,
				URL: url + "/next", Title: "Next", Referrer: url, Transition: event.TransLink})
		case 2:
			evs = append(evs, &event.Event{Time: at.Add(time.Second), Type: event.TypeSearch, Tab: 1 + i%3,
				Terms: fmt.Sprintf("term %d", i%11), URL: "http://search.example/?q=x"})
			evs = append(evs, &event.Event{Time: at.Add(2 * time.Second), Type: event.TypeVisit, Tab: 1 + i%3,
				URL: "http://search.example/?q=x", Title: "Results", Referrer: url, Transition: event.TransSearchResult})
		case 4:
			evs = append(evs, &event.Event{Time: at.Add(time.Second), Type: event.TypeDownload, Tab: 1 + i%3,
				URL: url + "/f.zip", SavePath: fmt.Sprintf("/dl/f-%d.zip", i), ContentType: "application/zip"})
		case 5:
			evs = append(evs, &event.Event{Time: at.Add(time.Second), Type: event.TypeBookmarkAdd, Tab: 1 + i%3,
				URL: url, Title: "Bookmark"})
		case 6:
			evs = append(evs, &event.Event{Time: at.Add(time.Second), Type: event.TypeVisit, Tab: 1 + i%3,
				URL: url + "/hop", Title: "Hop", Referrer: url, Transition: event.TransRedirectTemporary})
		case 7:
			evs = append(evs, &event.Event{Time: at.Add(time.Second), Type: event.TypeClose, Tab: 1 + i%3, URL: url})
		}
	}
	return evs
}

func sameNode(a, b Node) bool {
	return a.ID == b.ID && a.Kind == b.Kind && a.URL == b.URL && a.Title == b.Title &&
		a.Text == b.Text && a.Open.Equal(b.Open) && a.Close.Equal(b.Close) &&
		a.Page == b.Page && a.VisitSeq == b.VisitSeq && a.Via == b.Via
}

// storesMustMatch compares the whole read surface of two stores.
func storesMustMatch(t *testing.T, a, b *Store) {
	t.Helper()
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	ids := a.AllNodeIDs()
	if other := b.AllNodeIDs(); !sameIDs(ids, other) {
		t.Fatalf("node IDs differ: %d vs %d nodes", len(ids), len(other))
	}
	for _, id := range ids {
		na, _ := a.NodeByID(id)
		nb, ok := b.NodeByID(id)
		if !ok || !sameNode(na, nb) {
			t.Fatalf("node %d = %+v, want %+v", id, nb, na)
		}
		if ea, eb := a.OutEdges(id), b.OutEdges(id); !sameEdges(ea, eb) {
			t.Fatalf("OutEdges(%d) = %v, want %v", id, eb, ea)
		}
		if ea, eb := a.InEdges(id), b.InEdges(id); !sameEdges(ea, eb) {
			t.Fatalf("InEdges(%d) = %v, want %v", id, eb, ea)
		}
		if na.Kind == KindPage {
			if va, vb := a.VisitsOfPage(id), b.VisitsOfPage(id); !sameIDs(va, vb) {
				t.Fatalf("VisitsOfPage(%d) = %v, want %v", id, vb, va)
			}
		}
	}
	if da, db := a.Downloads(), b.Downloads(); !sameIDs(da, db) {
		t.Fatalf("Downloads = %v, want %v", db, da)
	}
	lo, hi := time.Time{}, time.Unix(1<<40, 0)
	if oa, ob := a.OpenBetween(lo, hi), b.OpenBetween(lo, hi); !sameIDs(oa, ob) {
		t.Fatalf("OpenBetween = %v, want %v", ob, oa)
	}
}

// TestApplyBatchMatchesApply: feeding the same events through
// ApplyBatch (several batch sizes, including ones that split related
// event pairs across batches) must build exactly the store the
// per-event path builds.
func TestApplyBatchMatchesApply(t *testing.T) {
	evs := genIngestEvents(120, t0)
	ref := openStore(t, t.TempDir())
	defer ref.Close()
	for _, ev := range evs {
		if err := ref.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	for _, batch := range []int{1, 3, 17, 64, len(evs) + 100} {
		s := openStore(t, t.TempDir())
		for i := 0; i < len(evs); i += batch {
			end := i + batch
			if end > len(evs) {
				end = len(evs)
			}
			if err := s.ApplyBatch(evs[i:end]); err != nil {
				t.Fatalf("batch=%d: %v", batch, err)
			}
		}
		storesMustMatch(t, ref, s)
		snapMustMatchStore(t, s, s.Snapshot())
		if cyc := s.VerifyDAG(); cyc != nil {
			t.Fatalf("batch=%d: cycle %v", batch, cyc)
		}
		s.Close()
	}
}

// TestApplyBatchRecovery: batched events land in the WAL and replay on
// reopen identically, across a mid-stream checkpoint.
func TestApplyBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	evs := genIngestEvents(90, t0)
	s := openStore(t, dir)
	if err := s.ApplyBatch(evs[:40]); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch(evs[40:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir)
	defer re.Close()
	ref := openStore(t, t.TempDir())
	defer ref.Close()
	if err := ref.ApplyBatch(evs); err != nil {
		t.Fatal(err)
	}
	storesMustMatch(t, ref, re)
}

// TestApplyBatchValidation: one invalid event rejects the whole batch
// up front — nothing is logged or applied.
func TestApplyBatchValidation(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	good := genIngestEvents(5, t0)
	bad := append(append([]*event.Event{}, good...), &event.Event{Type: event.TypeVisit, URL: "http://x.example/"}) // zero time
	if err := s.ApplyBatch(bad); !errors.Is(err, ErrInvalidBatch) {
		t.Fatalf("invalid batch: err = %v, want ErrInvalidBatch", err)
	}
	if st := s.Stats(); st.Nodes != 0 {
		t.Fatalf("rejected batch mutated the store: %+v", st)
	}
	if s.j.WALSize() != 0 {
		t.Fatalf("rejected batch logged %d bytes", s.j.WALSize())
	}
}

// TestWALTornWriteRecovery truncates the WAL mid-record — a torn write
// inside the last batch — and asserts replay recovers the clean prefix
// and the store reopens consistent and writable.
func TestWALTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	evs := genIngestEvents(60, t0)
	s := openStore(t, dir)
	if err := s.ApplyBatch(evs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop a few bytes off the WAL tail so the
	// final entry's payload is incomplete.
	wal := filepath.Join(dir, "provgraph.wal")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir)
	defer re.Close()
	// The clean prefix is everything but the last event.
	ref := openStore(t, t.TempDir())
	defer ref.Close()
	if err := ref.ApplyBatch(evs[:len(evs)-1]); err != nil {
		t.Fatal(err)
	}
	storesMustMatch(t, ref, re)
	if cyc := re.VerifyDAG(); cyc != nil {
		t.Fatalf("cycle after torn-write recovery: %v", cyc)
	}

	// The log was truncated at the last valid boundary: appending and
	// recovering again must work.
	extra := &event.Event{Time: t0.Add(100 * time.Hour), Type: event.TypeVisit, Tab: 9,
		URL: "http://after-tear.example/", Title: "After", Transition: event.TransTyped}
	if err := re.Apply(extra); err != nil {
		t.Fatal(err)
	}
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.PageByURL("http://after-tear.example/"); !ok {
		t.Fatal("post-recovery write missing")
	}
}

// TestWritesDuringResealOverlay holds a reseal's publish open (test
// gate) while writers keep mutating: snapshots taken in the window
// chain over the pending capture and must stay exactly consistent with
// the live store, before and after the delayed publish.
func TestWritesDuringResealOverlay(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	if err := s.ApplyBatch(genIngestEvents(400, t0)); err != nil {
		t.Fatal(err)
	}
	s.WaitReseal() // drain any threshold-triggered seal first

	gate := make(chan struct{})
	s.mu.Lock()
	s.sealGate = gate
	s.mu.Unlock()
	s.ForceReseal()
	if !s.Sealing() {
		t.Fatal("ForceReseal did not start a reseal")
	}

	// Mutations during the in-flight build: new nodes, edges into
	// captured nodes, closes of captured visits — all land in the fresh
	// overlay above the pending capture.
	if err := s.ApplyBatch(genIngestEvents(80, t0.Add(1000*time.Minute))); err != nil {
		t.Fatal(err)
	}
	chained := s.Snapshot()
	snapMustMatchStore(t, s, chained)

	close(gate)
	s.WaitReseal()
	s.mu.Lock()
	s.sealGate = nil
	s.mu.Unlock()
	if s.sealedMaxNow() == 0 {
		t.Fatal("reseal never published")
	}
	// The chained snapshot is still valid after the publish, and a
	// fresh one (now flat) matches the store too.
	snapMustMatchStore(t, s, chained)
	if err := s.ApplyBatch(genIngestEvents(10, t0.Add(2000*time.Minute))); err != nil {
		t.Fatal(err)
	}
	snapMustMatchStore(t, s, s.Snapshot())
}

// TestPinnedSnapshotAcrossReseal pins a snapshot, forces reseals and
// keeps writing, and asserts the pinned view's answers do not move.
func TestPinnedSnapshotAcrossReseal(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	if err := s.ApplyBatch(genIngestEvents(300, t0)); err != nil {
		t.Fatal(err)
	}
	s.WaitReseal()
	sn := s.Snapshot()

	type probe struct {
		node  Node
		out   []NodeID
		inIDs []NodeID
	}
	probes := make([]probe, 0, sn.MaxNodeID())
	for id := NodeID(1); id <= sn.MaxNodeID(); id++ {
		n, _ := sn.NodeByID(id)
		probes = append(probes, probe{
			node:  n,
			out:   append([]NodeID(nil), sn.Out(id)...),
			inIDs: append([]NodeID(nil), sn.In(id)...),
		})
	}
	openBefore := sn.OpenBetween(time.Time{}, time.Unix(1<<40, 0))
	dlsBefore := append([]NodeID(nil), sn.Downloads()...)

	for round := 0; round < 3; round++ {
		if err := s.ApplyBatch(genIngestEvents(200, t0.Add(time.Duration(1000*(round+1))*time.Minute))); err != nil {
			t.Fatal(err)
		}
		s.ForceReseal()
		s.WaitReseal()
	}

	for i, p := range probes {
		id := NodeID(i + 1)
		n, _ := sn.NodeByID(id)
		if !sameNode(n, p.node) {
			t.Fatalf("pinned node %d drifted: %+v -> %+v", id, p.node, n)
		}
		if !sameIDs(sn.Out(id), p.out) {
			t.Fatalf("pinned Out(%d) drifted", id)
		}
		if !sameIDs(sn.In(id), p.inIDs) {
			t.Fatalf("pinned In(%d) drifted", id)
		}
	}
	if !sameIDs(sn.OpenBetween(time.Time{}, time.Unix(1<<40, 0)), openBefore) {
		t.Fatal("pinned OpenBetween drifted")
	}
	if !sameIDs(sn.Downloads(), dlsBefore) {
		t.Fatal("pinned Downloads drifted")
	}
}

// TestResealInvalidatedByRetention lets retention rewrite the graph
// while a gated reseal is in flight: the stale epoch must be discarded
// (sealSeq mismatch), and the store must stay consistent and able to
// seal again afterwards.
func TestResealInvalidatedByRetention(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	if err := s.ApplyBatch(genIngestEvents(300, t0)); err != nil {
		t.Fatal(err)
	}
	s.WaitReseal()

	gate := make(chan struct{})
	s.mu.Lock()
	s.sealGate = gate
	s.mu.Unlock()
	s.ForceReseal()

	// Retention rewrites the graph wholesale under the in-flight build.
	if _, err := s.ExpireBefore(t0.Add(200 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	close(gate)
	s.WaitReseal()
	// Retention's epochReset bumped sealSeq, so the gated publish must
	// have been discarded: the store is still unsealed.
	s.mu.Lock()
	s.sealGate = nil
	sealedAfter := s.sealed
	s.mu.Unlock()
	if sealedAfter != nil {
		t.Fatal("stale epoch published over retention rewrite")
	}
	snapMustMatchStore(t, s, s.Snapshot())

	// The store can seal again from the post-retention state.
	if err := s.ApplyBatch(genIngestEvents(200, t0.Add(3000*time.Minute))); err != nil {
		t.Fatal(err)
	}
	s.ForceReseal()
	s.WaitReseal()
	snapMustMatchStore(t, s, s.Snapshot())
}
