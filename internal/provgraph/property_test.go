package provgraph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"browserprov/internal/event"
)

// genEvents produces a random but valid browsing event stream: the kind
// of arbitrary interleaving of visits, searches, downloads, bookmarks,
// closes and tab switches a real user generates.
func genEvents(seed int64, n int) []*event.Event {
	rng := rand.New(rand.NewSource(seed))
	now := t0
	tick := func() time.Time {
		now = now.Add(time.Duration(1+rng.Intn(300)) * time.Second)
		return now
	}
	urls := make([]string, 30)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site%d.example/page%d", i%6, i)
	}
	// Track per-tab current URL so referrers are plausible.
	tabURL := map[int]string{}
	pickTab := func() int { return 1 + rng.Intn(3) }

	var evs []*event.Event
	for len(evs) < n {
		tab := pickTab()
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // link or typed visit
			u := urls[rng.Intn(len(urls))]
			tr := event.TransLink
			ref := tabURL[tab]
			if ref == "" || rng.Intn(4) == 0 {
				tr = event.TransTyped
				ref = ""
			}
			evs = append(evs, &event.Event{Time: tick(), Type: event.TypeVisit, Tab: tab,
				URL: u, Title: "T " + u, Referrer: ref, Transition: tr})
			tabURL[tab] = u
		case 5: // search + results + click
			terms := fmt.Sprintf("query%d word%d", rng.Intn(5), rng.Intn(8))
			results := "http://search.example/?q=" + fmt.Sprint(rng.Intn(5))
			evs = append(evs, &event.Event{Time: tick(), Type: event.TypeSearch, Tab: tab, Terms: terms, URL: results})
			evs = append(evs, &event.Event{Time: tick(), Type: event.TypeVisit, Tab: tab,
				URL: results, Title: terms + " - Search", Referrer: tabURL[tab], Transition: event.TransLink})
			tabURL[tab] = results
			u := urls[rng.Intn(len(urls))]
			evs = append(evs, &event.Event{Time: tick(), Type: event.TypeVisit, Tab: tab,
				URL: u, Title: "T " + u, Referrer: results, Transition: event.TransSearchResult})
			tabURL[tab] = u
		case 6: // download
			if cur := tabURL[tab]; cur != "" {
				evs = append(evs, &event.Event{Time: tick(), Type: event.TypeDownload, Tab: tab,
					URL: cur + "/file.zip", Referrer: cur,
					SavePath: fmt.Sprintf("/dl/f%d.zip", len(evs)), ContentType: "application/zip"})
			}
		case 7: // bookmark current
			if cur := tabURL[tab]; cur != "" {
				evs = append(evs, &event.Event{Time: tick(), Type: event.TypeBookmarkAdd, Tab: tab,
					URL: cur, Title: "B " + cur})
			}
		case 8: // close tab
			if cur := tabURL[tab]; cur != "" {
				evs = append(evs, &event.Event{Time: tick(), Type: event.TypeClose, Tab: tab, URL: cur})
				delete(tabURL, tab)
			}
		case 9: // redirect hop
			if cur := tabURL[tab]; cur != "" {
				mid := fmt.Sprintf("http://shrt.example/%d", rng.Intn(50))
				dst := urls[rng.Intn(len(urls))]
				evs = append(evs, &event.Event{Time: tick(), Type: event.TypeVisit, Tab: tab,
					URL: mid, Referrer: cur, Transition: event.TransLink})
				evs = append(evs, &event.Event{Time: tick(), Type: event.TypeVisit, Tab: tab,
					URL: dst, Title: "T " + dst, Referrer: mid, Transition: event.TransRedirectTemporary})
				tabURL[tab] = dst
			}
		}
	}
	return evs
}

// TestPropertyDAGUnderRandomStreams: the acyclicity invariant (§3.1)
// must hold for every valid event stream.
func TestPropertyDAGUnderRandomStreams(t *testing.T) {
	f := func(seed int64) bool {
		s, err := Open(t.TempDir())
		if err != nil {
			return false
		}
		defer s.Close()
		for _, ev := range genEvents(seed, 300) {
			if err := s.Apply(ev); err != nil {
				return false
			}
		}
		return s.VerifyDAG() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEdgesRespectTime: every provenance edge points from an
// earlier (or equal) instance to a later one.
func TestPropertyEdgesRespectTime(t *testing.T) {
	f := func(seed int64) bool {
		s, err := Open(t.TempDir())
		if err != nil {
			return false
		}
		defer s.Close()
		for _, ev := range genEvents(seed, 300) {
			if err := s.Apply(ev); err != nil {
				return false
			}
		}
		ok := true
		s.EachNode(func(n Node) bool {
			for _, e := range s.OutEdges(n.ID) {
				to, found := s.NodeByID(e.To)
				if !found || to.Open.Before(n.Open) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRecoveryRoundTrip: crash recovery (WAL replay) and
// checkpoint+reopen must both reconstruct the identical graph.
func TestPropertyRecoveryRoundTrip(t *testing.T) {
	f := func(seed int64, checkpoint bool) bool {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			return false
		}
		evs := genEvents(seed, 200)
		for _, ev := range evs {
			if err := s.Apply(ev); err != nil {
				s.Close()
				return false
			}
		}
		if checkpoint {
			if err := s.Checkpoint(); err != nil {
				s.Close()
				return false
			}
		}
		want := s.Stats()
		wantEdges := edgeFingerprint(s)
		if err := s.Close(); err != nil {
			return false
		}

		s2, err := Open(dir)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Stats() != want {
			return false
		}
		return edgeFingerprint(s2) == wantEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// edgeFingerprint folds every edge (from, to, kind, at) into an
// order-independent hash.
func edgeFingerprint(s *Store) uint64 {
	var h uint64
	s.EachNode(func(n Node) bool {
		for _, e := range s.OutEdges(n.ID) {
			x := uint64(e.From)*1_000_003 ^ uint64(e.To)*7919 ^ uint64(e.Kind)*104729 ^ uint64(e.At.UnixMicro())
			// Mix and fold commutatively so iteration order is moot.
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 33
			h += x
		}
		return true
	})
	return h
}

// TestPropertyVisitCountsMatchVisits: per-page instance lists are
// consistent with the global stats under random streams.
func TestPropertyVisitCountsMatchVisits(t *testing.T) {
	f := func(seed int64) bool {
		s, err := Open(t.TempDir())
		if err != nil {
			return false
		}
		defer s.Close()
		for _, ev := range genEvents(seed, 250) {
			if err := s.Apply(ev); err != nil {
				return false
			}
		}
		total := 0
		for _, page := range s.NodesOfKind(KindPage) {
			vs := s.VisitsOfPage(page)
			total += len(vs)
			// VisitSeq must be 1..len in order.
			for i, v := range vs {
				n, ok := s.NodeByID(v)
				if !ok || n.VisitSeq != i+1 || n.Page != page {
					return false
				}
			}
		}
		return total == s.Stats().Visits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
