package provgraph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"browserprov/internal/event"
	"browserprov/internal/storage"
)

func fillStore(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustApply(t, s, visit(1, fmt.Sprintf("http://site%d.example/", i),
			fmt.Sprintf("Site %d", i), "", event.TransTyped, t0.Add(time.Duration(i)*time.Minute)))
	}
}

// flipSectionByte flips a payload byte of the first non-empty real
// section of the sectioned checkpoint at path (skipping page-alignment
// pad frames, whose bytes are never verified).
func flipSectionByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(16) // section file header
	for off+16 <= int64(len(b)) {
		tag := binary.LittleEndian.Uint32(b[off:])
		length := int64(binary.LittleEndian.Uint64(b[off+4:]))
		off += 16
		if tag != 0 && length > 0 {
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var one [1]byte
			if _, err := f.ReadAt(one[:], off+length/2); err != nil {
				t.Fatal(err)
			}
			one[0] ^= 0xFF
			if _, err := f.WriteAt(one[:], off+length/2); err != nil {
				t.Fatal(err)
			}
			return
		}
		off += length
	}
	t.Fatal("no non-empty section found")
}

func TestScrubCleanStoreSweeps(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	fillStore(t, s, 200)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, visit(1, "http://tail.example/", "Tail", "", event.TransTyped, t0.Add(time.Hour)))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Scrub(0, 0); err != nil {
		t.Fatalf("scrub of clean store: %v", err)
	}
	st := s.ScrubStatus()
	if st.Sweeps != 1 || st.Corruptions != 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.LastScrub.IsZero() {
		t.Fatal("LastScrub not set")
	}
	if st.FramesVerified == 0 {
		t.Fatal("no WAL frames verified despite a live tail")
	}

	// Tiny budgets still converge: the cursor resumes across steps.
	for i := 0; i < 10000; i++ {
		done, err := s.ScrubStep(time.Nanosecond)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if st := s.ScrubStatus(); st.Sweeps != 2 {
		t.Fatalf("sweeps = %d, want 2", st.Sweeps)
	}
}

func TestScrubDetectsMappedCheckpointBitRot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	fillStore(t, s, 300)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen so the checkpoint is the live mapped view, then rot it on
	// disk: MAP_SHARED means the mapping observes the flipped byte.
	s2, err := OpenWith(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	flipSectionByte(t, storage.SnapshotFilePath(dir, "provgraph", 1))

	err = s2.Scrub(0, 0)
	if !errors.Is(err, storage.ErrSectionCorrupt) {
		t.Fatalf("scrub err = %v, want ErrSectionCorrupt", err)
	}
	st := s2.ScrubStatus()
	if st.Corruptions != 1 || st.LastError == "" {
		t.Fatalf("status = %+v", st)
	}
}

func TestScrubDetectsWALCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	fillStore(t, s, 50)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte early in the WAL (mid-file: plenty of valid frames
	// follow), then reopen-free scrub detection via a fresh store is not
	// possible (open truncates at the bad frame) — so corrupt AFTER
	// reopening, while the log is live.
	s2, err := OpenWith(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	walPath := dir + "/provgraph.wal"
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	off := fi.Size() / 3 // mid-file, frames follow
	if _, err := f.ReadAt(one[:], off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0xFF
	if _, err := f.WriteAt(one[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = s2.Scrub(0, 0)
	if !errors.Is(err, storage.ErrWALReaderCorrupt) {
		t.Fatalf("scrub err = %v, want ErrWALReaderCorrupt", err)
	}
}

func TestScrubUnmappedStoreReadsDisk(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	fillStore(t, s, 100)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenWith(dir, Options{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Scrub(0, 0); err != nil {
		t.Fatalf("clean unmapped scrub: %v", err)
	}
	// Heap-backed view: the in-memory copy stays clean, but the sweep
	// re-reads the file and must still catch the rot.
	flipSectionByte(t, storage.SnapshotFilePath(dir, "provgraph", 1))
	if err := s2.Scrub(0, 0); !errors.Is(err, storage.ErrSectionCorrupt) {
		t.Fatalf("scrub err = %v, want ErrSectionCorrupt", err)
	}
}

func TestScrubDuringConcurrentIngestAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	defer s.Close()
	fillStore(t, s, 100)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	scrubErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				scrubErr <- nil
				return
			default:
			}
			if _, err := s.ScrubStep(100 * time.Microsecond); err != nil {
				scrubErr <- err
				return
			}
		}
	}()
	for i := 0; i < 6; i++ {
		fillStore(t, s, 40)
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-scrubErr; err != nil {
		t.Fatalf("scrub during ingest/checkpoint churn: %v", err)
	}
}

func TestRepairStoreFallsBackAfterBitRot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{RetainPrevCheckpoint: true, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 120)
	if err := s.Checkpoint(); err != nil { // gen 1
		t.Fatal(err)
	}
	fillStore(t, s, 40)                    // note: duplicate URLs re-visit; fine
	if err := s.Checkpoint(); err != nil { // gen 2, gen 1 retained
		t.Fatal(err)
	}
	mustApply(t, s, visit(2, "http://after.example/", "After", "", event.TransTyped, t0.Add(2*time.Hour)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wantNodes := 0
	{
		chk, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		wantNodes = chk.Stats().Nodes
		chk.Close()
	}

	flipSectionByte(t, storage.SnapshotFilePath(dir, "provgraph", 2))
	rep, err := RepairStore(dir)
	if err != nil {
		t.Fatalf("RepairStore: %v", err)
	}
	if !rep.FellBack || rep.PrevGen != 1 {
		t.Fatalf("report = %+v", rep)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer s2.Close()
	if got := s2.Stats().Nodes; got != wantNodes {
		t.Fatalf("nodes after repair = %d, want %d", got, wantNodes)
	}
	if _, ok := s2.PageByURL("http://after.example/"); !ok {
		t.Fatal("post-checkpoint event lost by repair")
	}
	if err := s2.Scrub(0, 0); err != nil {
		t.Fatalf("scrub after repair: %v", err)
	}
}
