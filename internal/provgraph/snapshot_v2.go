package provgraph

import (
	"fmt"
	"sort"
	"time"

	"browserprov/internal/graph"
	"browserprov/internal/storage"
)

// This file implements the sectioned columnar (v2) checkpoint: instead
// of the v1 per-record dump that recovery replays one node and one edge
// group at a time, a v2 checkpoint persists a flattened sealed epoch as
// contiguous array sections — node columns, CSR offsets and targets,
// edge kinds and timestamps, per-key-sorted secondary-index streams,
// and the query engine's text-index postings. Open bulk-loads the
// arrays: the store comes up already sealed (the checkpoint IS the
// sealed epoch), the B-trees are built bottom-up from sorted streams
// instead of N random inserts, and the text index warm-starts at the
// checkpointed watermark instead of retokenizing from node 0. Only the
// WAL tail remains to replay as the unsealed overlay.
//
// The writer consumes nothing but an immutable Snapshot capture plus an
// O(tabs) assembly copy, both taken under a short lock — which is what
// lets Store.Checkpoint stream the dump in the background while writers
// keep appending (see Checkpoint in provgraph.go).

// Section tags of the v2 checkpoint. The storage.SectionWriter header
// carries the container format version; these tags version the
// provenance schema within it.
const (
	secNodes     = 1  // columnar node table (flags, opens, closes, pages, vias, seqs, string blob)
	secCSR       = 2  // out-direction: per-node degrees + flat target array
	secEdges     = 3  // per-arc edge kinds and timestamp deltas, out-aligned
	secInAdj     = 4  // in-adjacency in per-node insertion order (From, kind, at)
	secOpen      = 5  // (open time, id) visit timeline, sorted
	secURLIndex  = 6  // page IDs sorted by URL — urlIndex bulk-load stream
	secTermIndex = 7  // latest term-instance IDs sorted by term — termIndex stream
	secAssembly  = 8  // counters, per-tab cursors, pending joins
	secText      = 9  // text-index postings + watermark (optional)
	secDedup     = 10 // ingest event-ID dedup window, insertion order (optional)
)

// Node column flag bits. Low three bits hold the NodeKind (0 = gap left
// by retention); the rest mark optional per-node columns.
const (
	nfKindMask = 0x07
	nfClose    = 0x08
	nfURL      = 0x10
	nfTitle    = 0x20
	nfText     = 0x40
	nfSeq      = 0x80
)

// assemblyCapture is the O(tabs) copy of the store's event-assembly
// state a checkpoint takes under the lock.
type assemblyCapture struct {
	nextNode      NodeID
	mode          VersioningMode
	tabCur        map[int]NodeID
	pendingSearch map[int]pending
	pendingForm   map[int]pending
	dedupIDs      []string // ingest dedup window, insertion order
}

// captureAssemblyLocked copies the assembly state. Caller holds mu.
func (s *Store) captureAssemblyLocked() assemblyCapture {
	asm := assemblyCapture{
		nextNode:      s.nextNode,
		mode:          s.mode,
		tabCur:        make(map[int]NodeID, len(s.tabCur)),
		pendingSearch: make(map[int]pending, len(s.pendingSearch)),
		pendingForm:   make(map[int]pending, len(s.pendingForm)),
	}
	for t, v := range s.tabCur {
		asm.tabCur[t] = v
	}
	for t, p := range s.pendingSearch {
		asm.pendingSearch[t] = p
	}
	for t, p := range s.pendingForm {
		asm.pendingForm[t] = p
	}
	asm.dedupIDs = s.dedup.snapshot()
	return asm
}

// micro returns t as Unix microseconds, with the zero time mapped to 0
// (the same convention as the storage codec).
func micro(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMicro()
}

func microTime(us int64) time.Time {
	if us == 0 {
		return time.Time{}
	}
	return time.UnixMicro(us).UTC()
}

// writeSnapshotV2 streams a flattened epoch plus assembly and text-index
// state into the section writer. It reads only immutable captured data
// and runs without any store lock.
func writeSnapshotV2(w *storage.SectionWriter, ep *sealedEpoch, asm assemblyCapture, text []byte, textWM NodeID) error {
	maxID := ep.maxID
	openMicro := make([]int64, maxID+1)
	for id := NodeID(1); id <= maxID; id++ {
		if ep.nodes[id].Kind != 0 {
			openMicro[id] = micro(ep.nodes[id].Open)
		}
	}
	// nodeFlags computes the column-presence flags for one node. Visit
	// URL and title are elided exactly when they equal the page node's
	// (the dominant case — the normalisation Places applies via
	// place_id) and rehydrated from the page at load. The flag bit, not
	// string emptiness, is the elision marker: a visit whose title is
	// genuinely empty while its page has one keeps its own nfTitle
	// entry (of length zero), so recovery reproduces it exactly instead
	// of resurrecting the page title. (The v1 record format cannot
	// represent that case — it stores "" for every visit title — so v2
	// is strictly more faithful there.)
	nodeFlags := func(n *Node) byte {
		if n.Kind == 0 {
			return 0
		}
		f := byte(n.Kind) & nfKindMask
		if !n.Close.IsZero() {
			f |= nfClose
		}
		hasURL, hasTitle := n.URL != "", n.Title != ""
		if n.Kind == KindVisit && n.Page != 0 && n.Page <= maxID {
			p := &ep.nodes[n.Page]
			hasURL = n.URL != p.URL
			hasTitle = n.Title != p.Title
		}
		if hasURL {
			f |= nfURL
		}
		if hasTitle {
			f |= nfTitle
		}
		if n.Text != "" {
			f |= nfText
		}
		if n.VisitSeq != 0 {
			f |= nfSeq
		}
		return f
	}
	if err := w.WriteSection(secNodes, func(e *storage.Encoder) error {
		e.Uvarint(uint64(maxID))
		for id := NodeID(1); id <= maxID; id++ {
			e.Byte(nodeFlags(&ep.nodes[id]))
		}
		prevOpen := int64(0)
		for id := NodeID(1); id <= maxID; id++ {
			if ep.nodes[id].Kind == 0 {
				continue
			}
			e.Varint(openMicro[id] - prevOpen)
			prevOpen = openMicro[id]
		}
		for id := NodeID(1); id <= maxID; id++ {
			if n := &ep.nodes[id]; n.Kind != 0 && !n.Close.IsZero() {
				e.Varint(micro(n.Close) - openMicro[id])
			}
		}
		for id := NodeID(1); id <= maxID; id++ {
			if n := &ep.nodes[id]; n.Kind == KindVisit {
				e.Uvarint(uint64(id - n.Page))
			}
		}
		for id := NodeID(1); id <= maxID; id++ {
			if n := &ep.nodes[id]; n.Kind == KindVisit {
				e.Uvarint(uint64(n.Via))
			}
		}
		for id := NodeID(1); id <= maxID; id++ {
			if n := &ep.nodes[id]; n.Kind != 0 && n.VisitSeq != 0 {
				e.Uvarint(uint64(n.VisitSeq))
			}
		}
		// String columns: lengths per present field, then one blob per
		// column. Recomputing the flags is cheaper than materialising a
		// per-node side table.
		for id := NodeID(1); id <= maxID; id++ {
			if nodeFlags(&ep.nodes[id])&nfURL != 0 {
				e.Uvarint(uint64(len(ep.nodes[id].URL)))
			}
		}
		for id := NodeID(1); id <= maxID; id++ {
			if nodeFlags(&ep.nodes[id])&nfTitle != 0 {
				e.Uvarint(uint64(len(ep.nodes[id].Title)))
			}
		}
		for id := NodeID(1); id <= maxID; id++ {
			if nodeFlags(&ep.nodes[id])&nfText != 0 {
				e.Uvarint(uint64(len(ep.nodes[id].Text)))
			}
		}
		for id := NodeID(1); id <= maxID; id++ {
			if nodeFlags(&ep.nodes[id])&nfURL != 0 {
				e.Raw([]byte(ep.nodes[id].URL))
			}
		}
		for id := NodeID(1); id <= maxID; id++ {
			if nodeFlags(&ep.nodes[id])&nfTitle != 0 {
				e.Raw([]byte(ep.nodes[id].Title))
			}
		}
		for id := NodeID(1); id <= maxID; id++ {
			if nodeFlags(&ep.nodes[id])&nfText != 0 {
				e.Raw([]byte(ep.nodes[id].Text))
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := w.WriteSection(secCSR, func(e *storage.Encoder) error {
		_, outOff, outAdj := ep.csr.Parts()
		e.Uvarint(uint64(maxID))
		e.Uvarint(uint64(len(outAdj)))
		for id := NodeID(1); id <= maxID; id++ {
			e.Uvarint(uint64(outOff[id+1] - outOff[id]))
		}
		for _, to := range outAdj {
			e.Uvarint(uint64(to))
		}
		return nil
	}); err != nil {
		return err
	}
	if err := w.WriteSection(secEdges, func(e *storage.Encoder) error {
		for i := range ep.edges {
			ed := &ep.edges[i]
			e.Uvarint(uint64(ed.Kind))
			e.Varint(micro(ed.At) - openMicro[ed.To])
		}
		return nil
	}); err != nil {
		return err
	}
	if err := w.WriteSection(secInAdj, func(e *storage.Encoder) error {
		// Per-node insertion order is not derivable from the From-grouped
		// out arrays (it interleaves across sources in global event
		// order), and first-parent stability across restarts depends on
		// it — so the in-direction is persisted explicitly.
		for i := range ep.inEdges {
			ed := &ep.inEdges[i]
			e.Uvarint(uint64(ed.From))
			e.Uvarint(uint64(ed.Kind))
			e.Varint(micro(ed.At) - openMicro[ed.To])
		}
		return nil
	}); err != nil {
		return err
	}
	if err := w.WriteSection(secOpen, func(e *storage.Encoder) error {
		e.Uvarint(uint64(len(ep.open)))
		prev := int64(0)
		for _, ent := range ep.open {
			e.Varint(ent.at - prev)
			e.Uvarint(uint64(ent.id))
			prev = ent.at
		}
		return nil
	}); err != nil {
		return err
	}
	if err := writeSortedIDs(w, secURLIndex, ep.urlToPage); err != nil {
		return err
	}
	if err := writeSortedIDs(w, secTermIndex, ep.termNode); err != nil {
		return err
	}
	if err := writeAssemblySection(w, asm); err != nil {
		return err
	}
	if err := writeDedupSection(w, asm.dedupIDs); err != nil {
		return err
	}
	return writeTextSection(w, text, textWM)
}

// writeSortedIDs persists a secondary-index stream: node IDs sorted by
// their key. The keys themselves live in the node columns, so the
// sections cost a few bytes per entry and the loader bulk-builds each
// B-tree from one linear pass with zero re-sorting.
func writeSortedIDs(w *storage.SectionWriter, tag uint32, byKey map[string]NodeID) error {
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return w.WriteSection(tag, func(e *storage.Encoder) error {
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.Uvarint(uint64(byKey[k]))
		}
		return nil
	})
}

// writeAssemblySection persists the per-tab event-assembly state; both
// schema versions share its layout.
func writeAssemblySection(w *storage.SectionWriter, asm assemblyCapture) error {
	return w.WriteSection(secAssembly, func(e *storage.Encoder) error {
		e.Uvarint(uint64(asm.nextNode))
		e.Uvarint(uint64(asm.mode))
		tabs := make([]int, 0, len(asm.tabCur))
		for t := range asm.tabCur {
			tabs = append(tabs, t)
		}
		sort.Ints(tabs)
		e.Uvarint(uint64(len(tabs)))
		for _, t := range tabs {
			e.Varint(int64(t))
			e.Uvarint(uint64(asm.tabCur[t]))
		}
		writePending := func(m map[int]pending) {
			ks := make([]int, 0, len(m))
			for t := range m {
				ks = append(ks, t)
			}
			sort.Ints(ks)
			e.Uvarint(uint64(len(ks)))
			for _, t := range ks {
				e.Varint(int64(t))
				e.Uvarint(uint64(m[t].node))
				e.String(m[t].url)
			}
		}
		writePending(asm.pendingSearch)
		writePending(asm.pendingForm)
		return nil
	})
}

// writeDedupSection persists the ingest dedup window in insertion order
// (skipped when empty, so stores that never saw keyed ingest produce
// checkpoints byte-identical to pre-dedup builds). Both schema versions
// share it; the section is optional at load.
func writeDedupSection(w *storage.SectionWriter, ids []string) error {
	if len(ids) == 0 {
		return nil
	}
	return w.WriteSection(secDedup, func(e *storage.Encoder) error {
		e.Uvarint(uint64(len(ids)))
		for _, id := range ids {
			e.String(id)
		}
		return nil
	})
}

// readDedupSection restores the ingest dedup window. Strings are copied
// out of the section payload by construction (byte-to-string
// conversion), so aliasing the checkpoint buffer here is safe.
func (s *Store) readDedupSection(p []byte) error {
	d := storage.NewDecoder(p)
	count, err := d.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		id, err := d.String()
		if err != nil {
			return err
		}
		s.dedup.add(id)
	}
	return nil
}

// writeTextSection persists the text-index postings (skipped when nil).
func writeTextSection(w *storage.SectionWriter, text []byte, textWM NodeID) error {
	if text == nil {
		return nil
	}
	return w.WriteSection(secText, func(e *storage.Encoder) error {
		e.Uvarint(uint64(textWM))
		e.Raw(text)
		return nil
	})
}

// loadSnapshotV2 bulk-loads a sectioned checkpoint: it reconstructs the
// sealed epoch's arrays directly, points the store's mutable maps at
// capacity-clamped views of them (appends copy-on-write, so the shared
// arrays stay immutable for snapshot readers), bulk-builds the B-trees
// from the sorted streams, and installs the epoch as the published seal.
// The WAL tail then replays as ordinary tail mutations over it.
func (s *Store) loadSnapshotV2(secs map[uint32][]byte) error {
	need := func(tag uint32, name string) (*storage.Decoder, error) {
		p, ok := secs[tag]
		if !ok {
			return nil, fmt.Errorf("provgraph: checkpoint missing %s section", name)
		}
		return storage.NewDecoder(p), nil
	}

	// ---- node columns ----
	d, err := need(secNodes, "nodes")
	if err != nil {
		return err
	}
	maxU, err := d.Uvarint()
	if err != nil {
		return err
	}
	maxID := NodeID(maxU)
	ep := &sealedEpoch{
		maxID:     maxID,
		nodes:     make([]Node, maxID+1),
		urlToPage: make(map[string]NodeID, maxID/2+1),
		termNode:  make(map[string]NodeID, maxID/16+1),
		saveNode:  make(map[string]NodeID),
	}
	flags := make([]byte, maxID+1)
	for id := NodeID(1); id <= maxID; id++ {
		b, err := d.Byte()
		if err != nil {
			return err
		}
		flags[id] = b
		ep.nodes[id].ID = id
		ep.nodes[id].Kind = NodeKind(b & nfKindMask)
	}
	openMicro := make([]int64, maxID+1)
	prevOpen := int64(0)
	for id := NodeID(1); id <= maxID; id++ {
		if flags[id] == 0 {
			continue
		}
		delta, err := d.Varint()
		if err != nil {
			return err
		}
		prevOpen += delta
		openMicro[id] = prevOpen
		ep.nodes[id].Open = microTime(prevOpen)
	}
	for id := NodeID(1); id <= maxID; id++ {
		if flags[id]&nfClose != 0 {
			delta, err := d.Varint()
			if err != nil {
				return err
			}
			ep.nodes[id].Close = microTime(openMicro[id] + delta)
		}
	}
	for id := NodeID(1); id <= maxID; id++ {
		if ep.nodes[id].Kind == KindVisit {
			delta, err := d.Uvarint()
			if err != nil {
				return err
			}
			ep.nodes[id].Page = id - NodeID(delta)
		}
	}
	for id := NodeID(1); id <= maxID; id++ {
		if ep.nodes[id].Kind == KindVisit {
			via, err := d.Uvarint()
			if err != nil {
				return err
			}
			ep.nodes[id].Via = EdgeKind(via)
		}
	}
	for id := NodeID(1); id <= maxID; id++ {
		if flags[id]&nfSeq != 0 {
			seq, err := d.Uvarint()
			if err != nil {
				return err
			}
			ep.nodes[id].VisitSeq = int(seq)
		}
	}
	readLens := func(bit byte) ([]uint32, error) {
		var lens []uint32
		for id := NodeID(1); id <= maxID; id++ {
			if flags[id]&bit != 0 {
				n, err := d.Uvarint()
				if err != nil {
					return nil, err
				}
				lens = append(lens, uint32(n))
			}
		}
		return lens, nil
	}
	urlLens, err := readLens(nfURL)
	if err != nil {
		return err
	}
	titleLens, err := readLens(nfTitle)
	if err != nil {
		return err
	}
	textLens, err := readLens(nfText)
	if err != nil {
		return err
	}
	readBlob := func(bit byte, lens []uint32, set func(n *Node, s string)) error {
		// One allocation per column: the whole blob becomes a single
		// string and every field is a zero-copy substring of it. With
		// ~10^5 string fields per column this is the difference between
		// three large allocations and a GC-visible object per field.
		total := 0
		for _, n := range lens {
			total += int(n)
		}
		b, err := d.Raw(total)
		if err != nil {
			return err
		}
		blob := string(b)
		i, off := 0, 0
		for id := NodeID(1); id <= maxID; id++ {
			if flags[id]&bit == 0 {
				continue
			}
			n := int(lens[i])
			set(&ep.nodes[id], blob[off:off+n])
			i++
			off += n
		}
		return nil
	}
	if err := readBlob(nfURL, urlLens, func(n *Node, v string) { n.URL = v }); err != nil {
		return err
	}
	if err := readBlob(nfTitle, titleLens, func(n *Node, v string) { n.Title = v }); err != nil {
		return err
	}
	if err := readBlob(nfText, textLens, func(n *Node, v string) { n.Text = v }); err != nil {
		return err
	}
	// Rehydrate elided visit URLs/titles from the page node (page IDs
	// always precede their visits) and derive the kind maps in one
	// ascending pass — latest instance wins, matching live semantics.
	nNodes := 0
	for id := NodeID(1); id <= maxID; id++ {
		n := &ep.nodes[id]
		if n.Kind == 0 {
			continue
		}
		nNodes++
		switch n.Kind {
		case KindPage:
			ep.urlToPage[n.URL] = id
		case KindVisit:
			// Absent flag = elided-as-equal-to-page, not empty: the flag
			// bit distinguishes a genuinely empty visit field from one
			// the writer dropped as redundant.
			if p := n.Page; p != 0 && p <= maxID {
				if flags[id]&nfURL == 0 {
					n.URL = ep.nodes[p].URL
				}
				if flags[id]&nfTitle == 0 {
					n.Title = ep.nodes[p].Title
				}
			}
		case KindSearchTerm:
			ep.termNode[n.Text] = id
		case KindDownload:
			ep.saveNode[n.Text] = id
			ep.downloads = append(ep.downloads, id)
		}
	}

	// ---- out-direction CSR + edge attributes ----
	d, err = need(secCSR, "csr")
	if err != nil {
		return err
	}
	if m, err := d.Uvarint(); err != nil {
		return err
	} else if NodeID(m) != maxID {
		return fmt.Errorf("provgraph: checkpoint CSR maxID %d != node table %d", m, maxID)
	}
	nArcs, err := d.Uvarint()
	if err != nil {
		return err
	}
	outOff := make([]uint32, maxID+2)
	for id := NodeID(1); id <= maxID; id++ {
		deg, err := d.Uvarint()
		if err != nil {
			return err
		}
		outOff[id+1] = uint32(deg)
	}
	for i := NodeID(1); i <= maxID+1; i++ {
		outOff[i] += outOff[i-1]
	}
	if uint64(outOff[maxID+1]) != nArcs {
		return fmt.Errorf("provgraph: checkpoint degree sum %d != arc count %d", outOff[maxID+1], nArcs)
	}
	outAdj := make([]NodeID, nArcs)
	for i := range outAdj {
		to, err := d.Uvarint()
		if err != nil {
			return err
		}
		if to == 0 || NodeID(to) > maxID {
			return fmt.Errorf("provgraph: checkpoint arc target %d out of range", to)
		}
		outAdj[i] = NodeID(to)
	}
	ep.csr = graph.CSRFromParts(maxID, outOff, outAdj)
	d, err = need(secEdges, "edges")
	if err != nil {
		return err
	}
	ep.edges = make([]Edge, nArcs)
	arc := 0
	for from := NodeID(1); from <= maxID; from++ {
		for o := outOff[from]; o < outOff[from+1]; o++ {
			kind, err := d.Uvarint()
			if err != nil {
				return err
			}
			delta, err := d.Varint()
			if err != nil {
				return err
			}
			to := outAdj[o]
			ep.edges[arc] = Edge{From: from, To: to, Kind: EdgeKind(kind),
				At: microTime(openMicro[to] + delta)}
			arc++
		}
	}

	// ---- in-direction, per-node insertion order ----
	ep.inOff = make([]uint32, maxID+2)
	for _, to := range outAdj {
		ep.inOff[to+1]++
	}
	for i := NodeID(1); i <= maxID+1; i++ {
		ep.inOff[i] += ep.inOff[i-1]
	}
	d, err = need(secInAdj, "in-adjacency")
	if err != nil {
		return err
	}
	ep.inIDs = make([]NodeID, nArcs)
	ep.inEdges = make([]Edge, nArcs)
	for to := NodeID(1); to <= maxID; to++ {
		for slot := ep.inOff[to]; slot < ep.inOff[to+1]; slot++ {
			from, err := d.Uvarint()
			if err != nil {
				return err
			}
			kind, err := d.Uvarint()
			if err != nil {
				return err
			}
			delta, err := d.Varint()
			if err != nil {
				return err
			}
			ep.inIDs[slot] = NodeID(from)
			ep.inEdges[slot] = Edge{From: NodeID(from), To: to, Kind: EdgeKind(kind),
				At: microTime(openMicro[to] + delta)}
		}
	}

	// ---- visit timeline ----
	d, err = need(secOpen, "open timeline")
	if err != nil {
		return err
	}
	nOpen, err := d.Uvarint()
	if err != nil {
		return err
	}
	ep.open = make([]openEnt, nOpen)
	prevAt := int64(0)
	for i := range ep.open {
		delta, err := d.Varint()
		if err != nil {
			return err
		}
		id, err := d.Uvarint()
		if err != nil {
			return err
		}
		prevAt += delta
		ep.open[i] = openEnt{at: prevAt, id: NodeID(id)}
	}

	// ---- per-page visit lists, CSR-packed (derived from Page column) ----
	ep.visitsOff = make([]uint32, maxID+2)
	for id := NodeID(1); id <= maxID; id++ {
		if n := &ep.nodes[id]; n.Kind == KindVisit && n.Page != 0 && n.Page <= maxID {
			ep.visitsOff[n.Page+1]++
		}
	}
	for i := NodeID(1); i <= maxID+1; i++ {
		ep.visitsOff[i] += ep.visitsOff[i-1]
	}
	ep.visitIDs = make([]NodeID, ep.visitsOff[maxID+1])
	visitCur := make([]uint32, maxID+1)
	for id := NodeID(1); id <= maxID; id++ {
		if n := &ep.nodes[id]; n.Kind == KindVisit && n.Page != 0 && n.Page <= maxID {
			ep.visitIDs[ep.visitsOff[n.Page]+visitCur[n.Page]] = id
			visitCur[n.Page]++
		}
	}

	// ---- store mutable state over the epoch arrays ----
	//
	// The live containers get capacity-clamped slices of the shared
	// immutable arrays: a writer's first append to any of them
	// reallocates (cap == len), so the epoch the snapshots read stays
	// untouched. Node pointers alias the epoch's slab directly; the
	// in-place mutation sites copy a node out first (see mutableNode),
	// so the slab needs no defensive duplicate.
	s.loadedNodes = ep.nodes
	// Presized replacements for the containers OpenWith created empty:
	// the adjacency columns fill in one linear pass, and growing a
	// 10^5-entry map incrementally spends more time splitting buckets
	// than filling them.
	s.nodes = make(map[NodeID]*Node, nNodes)
	s.outE = adjSized[Edge](maxID)
	s.inE = adjSized[Edge](maxID)
	s.outIDs = adjSized[NodeID](maxID)
	s.inIDs = adjSized[NodeID](maxID)
	s.pageVisits = make(map[NodeID][]NodeID, len(ep.urlToPage))
	s.lastVisitByURL = make(map[string]NodeID, len(ep.urlToPage))
	for id := NodeID(1); id <= maxID; id++ {
		n := &ep.nodes[id]
		if n.Kind == 0 {
			continue
		}
		s.nodes[id] = n
		switch n.Kind {
		case KindBookmark:
			s.bookmarkByURL[n.URL] = id
		case KindDownload:
			s.saveIndex[n.Text] = id
		}
		if lo, hi := outOff[id], outOff[id+1]; hi > lo {
			s.outE.rows[id] = ep.edges[lo:hi:hi]
			s.outIDs.rows[id] = outAdj[lo:hi:hi]
		}
		if lo, hi := ep.inOff[id], ep.inOff[id+1]; hi > lo {
			s.inE.rows[id] = ep.inEdges[lo:hi:hi]
			s.inIDs.rows[id] = ep.inIDs[lo:hi:hi]
		}
		if n.Kind == KindPage {
			if lo, hi := ep.visitsOff[id], ep.visitsOff[id+1]; hi > lo {
				s.pageVisits[id] = ep.visitIDs[lo:hi:hi]
			}
		}
	}
	if len(ep.downloads) > 0 {
		s.downloads = ep.downloads[:len(ep.downloads):len(ep.downloads)]
	}
	s.numEdges = int(nArcs)
	s.numNodes = nNodes

	// ---- secondary B-trees, bulk-built from the sorted ID streams ----
	loadIndex := func(tag uint32, name string, key func(id NodeID) string, t *storage.BTree) error {
		p, ok := secs[tag]
		if !ok {
			return fmt.Errorf("provgraph: checkpoint missing %s section", name)
		}
		return loadSortedIndex(p, name, maxID, key, t)
	}
	if err := loadIndex(secURLIndex, "url index",
		func(id NodeID) string { return ep.nodes[id].URL }, s.urlIndex); err != nil {
		return err
	}
	if err := loadIndex(secTermIndex, "term index",
		func(id NodeID) string { return ep.nodes[id].Text }, s.termIndex); err != nil {
		return err
	}
	{
		var keyBuf []byte
		i := 0
		s.openIndex.BulkLoad(func() ([]byte, uint64, bool) {
			if i >= len(ep.open) {
				return nil, 0, false
			}
			ent := ep.open[i]
			i++
			keyBuf = appendTimeKey(keyBuf[:0], microTime(ent.at), ent.id)
			return keyBuf, uint64(ent.id), true
		})
	}

	// ---- assembly state ----
	asmP, ok := secs[secAssembly]
	if !ok {
		return fmt.Errorf("provgraph: checkpoint missing assembly section")
	}
	if err := s.readAssemblySection(asmP); err != nil {
		return err
	}
	if p, ok := secs[secDedup]; ok {
		if err := s.readDedupSection(p); err != nil {
			return err
		}
	}
	// lastVisitByURL, array-driven (same result as rebuildLastVisit,
	// without iterating the just-built maps a second time).
	if s.mode == VersionEdges {
		for url, id := range ep.urlToPage {
			s.lastVisitByURL[url] = id
		}
	} else {
		for page := NodeID(1); page <= maxID; page++ {
			if lo, hi := ep.visitsOff[page], ep.visitsOff[page+1]; hi > lo {
				s.lastVisitByURL[ep.nodes[page].URL] = ep.visitIDs[hi-1]
			}
		}
	}

	// ---- text-index postings (optional) ----
	if p, ok := secs[secText]; ok {
		d := storage.NewDecoder(p)
		wm, err := d.Uvarint()
		if err != nil {
			return err
		}
		payload, err := d.Raw(d.Remaining())
		if err != nil {
			return err
		}
		// Copied: the section payload aliases the whole checkpoint file
		// buffer, and stashing the alias would pin every section in
		// memory until (if ever) an engine claims the postings.
		s.recoveredText = append([]byte(nil), payload...)
		s.recoveredTextWM = NodeID(wm)
	}

	// The store comes up already sealed: the checkpoint is the sealed
	// epoch, and the WAL tail replays as ordinary dirty-tracked
	// mutations above it.
	if maxID > 0 {
		s.sealed = ep
	}
	return nil
}

// readAssemblySection restores the per-tab event-assembly state; both
// schema versions share its layout.
func (s *Store) readAssemblySection(p []byte) error {
	d := storage.NewDecoder(p)
	nn, err := d.Uvarint()
	if err != nil {
		return err
	}
	s.nextNode = NodeID(nn)
	md, err := d.Uvarint()
	if err != nil {
		return err
	}
	s.mode = VersioningMode(md)
	ntabs, err := d.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < ntabs; i++ {
		t, err := d.Varint()
		if err != nil {
			return err
		}
		v, err := d.Uvarint()
		if err != nil {
			return err
		}
		s.tabCur[int(t)] = NodeID(v)
	}
	readPending := func(m map[int]pending) error {
		np, err := d.Uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < np; i++ {
			t, err := d.Varint()
			if err != nil {
				return err
			}
			nd, err := d.Uvarint()
			if err != nil {
				return err
			}
			u, err := d.String()
			if err != nil {
				return err
			}
			m[int(t)] = pending{node: NodeID(nd), url: u}
		}
		return nil
	}
	if err := readPending(s.pendingSearch); err != nil {
		return err
	}
	return readPending(s.pendingForm)
}

// loadSortedIndex bulk-builds a B-tree from a persisted sorted-ID
// stream, rehydrating each entry's key from the node table via key.
func loadSortedIndex(p []byte, name string, maxID NodeID, key func(id NodeID) string, t *storage.BTree) error {
	d := storage.NewDecoder(p)
	n, err := d.Uvarint()
	if err != nil {
		return err
	}
	var keyBuf []byte
	i := uint64(0)
	var decodeErr error
	t.BulkLoad(func() ([]byte, uint64, bool) {
		if i >= n || decodeErr != nil {
			return nil, 0, false
		}
		id, err := d.Uvarint()
		if err != nil || id == 0 || NodeID(id) > maxID {
			decodeErr = fmt.Errorf("provgraph: checkpoint %s entry %d invalid (%v)", name, i, err)
			return nil, 0, false
		}
		i++
		keyBuf = append(keyBuf[:0], key(NodeID(id))...)
		return keyBuf, id, true
	})
	return decodeErr
}
