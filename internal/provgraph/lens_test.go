package provgraph

import (
	"testing"
	"time"

	"browserprov/internal/event"
)

// buildRedirectChain ingests A -(link)-> short -(302)-> target plus an
// embedded resource on target, and returns the store.
func buildRedirectChain(t *testing.T) *Store {
	t.Helper()
	s := openStore(t, t.TempDir())
	t.Cleanup(func() { s.Close() })
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://short.example/r", "", "http://a.example/", event.TransLink, t0.Add(time.Minute)),
		visit(1, "http://target.example/", "Target", "http://short.example/r", event.TransRedirectTemporary, t0.Add(time.Minute+time.Second)),
		visit(1, "http://ads.example/banner", "", "http://target.example/", event.TransEmbed, t0.Add(time.Minute+2*time.Second)),
	)
	return s
}

func nodeURL(s *Store, id NodeID) string {
	n, _ := s.NodeByID(id)
	return n.URL
}

func TestLensSplicesRedirects(t *testing.T) {
	s := buildRedirectChain(t)
	lens := s.NewLens()
	pa, _ := s.PageByURL("http://a.example/")
	va := s.VisitsOfPage(pa.ID)[0]
	outs := lens.Out(va)
	if len(outs) != 1 {
		t.Fatalf("lens out = %d edges, want 1", len(outs))
	}
	if got := nodeURL(s, outs[0]); got != "http://target.example/" {
		t.Fatalf("lens successor = %s, want target (redirect spliced)", got)
	}
	// Raw view still shows the intermediate hop.
	raw := s.Out(va)
	if len(raw) != 1 || nodeURL(s, raw[0]) != "http://short.example/r" {
		t.Fatalf("raw successor = %v", raw)
	}
}

func TestLensInSplicesRedirectSources(t *testing.T) {
	s := buildRedirectChain(t)
	lens := s.NewLens()
	pt, _ := s.PageByURL("http://target.example/")
	vt := s.VisitsOfPage(pt.ID)[0]
	ins := lens.In(vt)
	if len(ins) != 1 {
		t.Fatalf("lens in = %d edges, want 1", len(ins))
	}
	if got := nodeURL(s, ins[0]); got != "http://a.example/" {
		t.Fatalf("lens predecessor = %s, want a.example", got)
	}
}

func TestLensDropsEmbeds(t *testing.T) {
	s := buildRedirectChain(t)
	lens := s.NewLens()
	pt, _ := s.PageByURL("http://target.example/")
	vt := s.VisitsOfPage(pt.ID)[0]
	for _, m := range lens.Out(vt) {
		if nodeURL(s, m) == "http://ads.example/banner" {
			t.Fatal("embedded content visible through lens")
		}
	}
	// Raw view keeps it (lineage queries need it).
	found := false
	for _, m := range s.Out(vt) {
		if nodeURL(s, m) == "http://ads.example/banner" {
			found = true
		}
	}
	if !found {
		t.Fatal("embed edge missing from raw view")
	}
}

func TestLensMultiHopRedirect(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://r1.example/", "", "http://a.example/", event.TransLink, t0.Add(time.Minute)),
		visit(1, "http://r2.example/", "", "http://r1.example/", event.TransRedirectPermanent, t0.Add(time.Minute+time.Second)),
		visit(1, "http://final.example/", "Final", "http://r2.example/", event.TransRedirectTemporary, t0.Add(time.Minute+2*time.Second)),
	)
	lens := s.NewLens()
	pa, _ := s.PageByURL("http://a.example/")
	va := s.VisitsOfPage(pa.ID)[0]
	outs := lens.Out(va)
	if len(outs) != 1 || nodeURL(s, outs[0]) != "http://final.example/" {
		t.Fatalf("multi-hop splice = %v", urlsOf(s, outs))
	}
	pf, _ := s.PageByURL("http://final.example/")
	vf := s.VisitsOfPage(pf.ID)[0]
	ins := lens.In(vf)
	if len(ins) != 1 || nodeURL(s, ins[0]) != "http://a.example/" {
		t.Fatalf("multi-hop In splice = %v", urlsOf(s, ins))
	}
}

func urlsOf(s *Store, ids []NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = nodeURL(s, id)
	}
	return out
}

func TestLensNoRedirectsIsIdentity(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://b.example/", "B", "http://a.example/", event.TransLink, t0.Add(time.Minute)),
	)
	lens := s.NewLens()
	pa, _ := s.PageByURL("http://a.example/")
	va := s.VisitsOfPage(pa.ID)[0]
	raw, lensed := s.Out(va), lens.Out(va)
	if len(raw) != len(lensed) || raw[0] != lensed[0] {
		t.Fatalf("lens differs on redirect-free graph: raw %v lens %v", raw, lensed)
	}
}
