package provgraph

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"browserprov/internal/event"
	"browserprov/internal/storage"
)

// applyAll feeds evs through per-event Apply.
func applyAll(t *testing.T, s *Store, evs []*event.Event) {
	t.Helper()
	for _, ev := range evs {
		if err := s.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointV2RoundTrip: a columnar checkpoint plus WAL tail must
// reopen into exactly the store the full event replay builds — and the
// reopened store must come up already sealed, with the tail overlay
// machinery (dirty tracking, reseals, retention) fully functional on
// top of the bulk-loaded epoch.
func TestCheckpointV2RoundTrip(t *testing.T) {
	dir := t.TempDir()
	evs := genIngestEvents(300, t0)
	s := openStore(t, dir)
	applyAll(t, s, evs[:200])
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyAll(t, s, evs[200:]) // WAL tail over the checkpoint
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ref := openStore(t, t.TempDir())
	defer ref.Close()
	applyAll(t, ref, evs)

	re := openStore(t, dir)
	defer re.Close()
	if re.sealedMaxNow() == 0 {
		t.Fatal("v2-loaded store did not come up sealed")
	}
	storesMustMatch(t, ref, re)
	snapMustMatchStore(t, re, re.Snapshot())
	if cyc := re.VerifyDAG(); cyc != nil {
		t.Fatalf("cycle after v2 recovery: %v", cyc)
	}

	// The bulk-loaded store keeps working as a live store: new events
	// (including mutations of sealed nodes), a forced reseal over the
	// loaded epoch, and retention.
	more := genIngestEvents(150, t0.Add(5000*time.Minute))
	applyAll(t, re, more)
	applyAll(t, ref, more)
	storesMustMatch(t, ref, re)
	snapMustMatchStore(t, re, re.Snapshot())
	re.ForceReseal()
	re.WaitReseal()
	snapMustMatchStore(t, re, re.Snapshot())
	if _, err := re.ExpireBefore(t0.Add(100 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	snapMustMatchStore(t, re, re.Snapshot())
}

// TestCheckpointV2NoTailSealed: with no WAL tail, the first snapshot
// after a v2 open is completely flat — the checkpoint IS the sealed
// epoch and nothing needs capturing.
func TestCheckpointV2NoTailSealed(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	applyAll(t, s, genIngestEvents(120, t0))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	sn := re.Snapshot()
	if sn.sealed == nil || sn.base != nil {
		t.Fatal("first snapshot after v2 open is not flat-sealed")
	}
	if len(sn.tailNodes) != 0 || len(sn.tailOut) != 0 {
		t.Fatalf("tail not empty after tail-less open: %d nodes, %d adj",
			len(sn.tailNodes), len(sn.tailOut))
	}
	snapMustMatchStore(t, re, sn)
}

// TestCheckpointV1V2Equivalence is the format-compatibility contract:
// the same history checkpointed through the legacy v1 record dump and
// the columnar v2 dump must load into identical graph state — across a
// WAL tail, and in both versioning modes.
func TestCheckpointV1V2Equivalence(t *testing.T) {
	for _, mode := range []VersioningMode{VersionNodes, VersionEdges} {
		t.Run(mode.String(), func(t *testing.T) {
			evs := genIngestEvents(250, t0)
			dirs := [2]string{t.TempDir(), t.TempDir()}
			for i, ckpt := range [2]func(*Store) error{(*Store).CheckpointV1, (*Store).Checkpoint} {
				s, err := OpenWith(dirs[i], Options{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				applyAll(t, s, evs[:180])
				if err := ckpt(s); err != nil {
					t.Fatal(err)
				}
				applyAll(t, s, evs[180:])
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
			v1, err := OpenWith(dirs[0], Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer v1.Close()
			v2, err := OpenWith(dirs[1], Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer v2.Close()
			storesMustMatch(t, v1, v2)
			snapMustMatchStore(t, v2, v2.Snapshot())
			// Identical follow-on ingest must keep them identical: the
			// loaded assembly state (tab cursors, pending joins) steers
			// how the next events fold in.
			more := genIngestEvents(60, t0.Add(7000*time.Minute))
			applyAll(t, v1, more)
			applyAll(t, v2, more)
			storesMustMatch(t, v1, v2)
		})
	}
}

// TestCheckpointCrashRecovery extends the torn-write suite to the
// checkpoint path: a crash mid-checkpoint-write leaves a partial
// sectioned file at the next generation's path with the metadata still
// naming the previous checkpoint — reopening must recover from the
// previous checkpoint plus the WAL with no data loss, and the next
// checkpoint must succeed over the debris.
func TestCheckpointCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	evs := genIngestEvents(200, t0)
	s := openStore(t, dir)
	applyAll(t, s, evs[:120])
	if err := s.Checkpoint(); err != nil { // gen 1, durable
		t.Fatal(err)
	}
	applyAll(t, s, evs[120:]) // WAL tail at risk across the "crash"
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn gen-2 write: a prefix of a valid sectioned file
	// (header intact, sections cut mid-frame) that never reached the
	// metadata swap.
	gen1 := filepath.Join(dir, "provgraph.snap.000001")
	full, err := os.ReadFile(gen1)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "provgraph.snap.000002")
	if err := os.WriteFile(torn, full[:len(full)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	ref := openStore(t, t.TempDir())
	defer ref.Close()
	applyAll(t, ref, evs)

	re := openStore(t, dir)
	storesMustMatch(t, ref, re)
	if cyc := re.VerifyDAG(); cyc != nil {
		t.Fatalf("cycle after crash recovery: %v", cyc)
	}
	// The next checkpoint claims the gen-2 path, truncating the debris.
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("checkpoint over torn debris: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := openStore(t, dir)
	defer re2.Close()
	storesMustMatch(t, ref, re2)
}

// TestBackgroundCheckpointNonBlocking is the writers-not-blocked
// contract: ApplyBatch keeps completing while a checkpoint dump is in
// flight (the dump window is held open deterministically via the text
// source hook, which runs in the off-lock phase), per-apply latency
// stays bounded by the capture, pinned snapshots stay byte-identical
// across the swap, and the checkpoint that raced the writers still
// recovers the full history.
func TestBackgroundCheckpointNonBlocking(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	base := genIngestEvents(2000, t0)
	if err := s.ApplyBatch(base); err != nil {
		t.Fatal(err)
	}
	s.WaitReseal()

	// Pin a snapshot and record its observable state.
	sn := s.Snapshot()
	type probe struct {
		node Node
		out  []NodeID
		in   []NodeID
	}
	probes := make(map[NodeID]probe)
	for id := NodeID(1); id <= sn.MaxNodeID(); id += 7 {
		if n, ok := sn.NodeByID(id); ok {
			probes[id] = probe{node: n,
				out: append([]NodeID(nil), sn.Out(id)...),
				in:  append([]NodeID(nil), sn.In(id)...)}
		}
	}

	// The text source runs during the off-lock dump phase: signal entry
	// and hold the window open long enough for writers to prove they
	// can commit inside it.
	dumping := make(chan struct{})
	s.SetTextCheckpointSource(func(maxDoc NodeID) ([]byte, NodeID) {
		close(dumping)
		time.Sleep(150 * time.Millisecond)
		return nil, 0
	})
	ckptDone := make(chan error, 1)
	go func() { ckptDone <- s.Checkpoint() }()
	<-dumping

	// Drive batches through the open dump window.
	var latencies []time.Duration
	var applied []*event.Event
	inWindow := 0
	round := 0
	for {
		select {
		case err := <-ckptDone:
			if err != nil {
				t.Fatal(err)
			}
		default:
		}
		batch := genIngestEvents(20, t0.Add(time.Duration(10000+100*round)*time.Minute))
		round++
		start := time.Now()
		if err := s.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		lat := time.Since(start)
		latencies = append(latencies, lat)
		applied = append(applied, batch...)
		select {
		case <-ckptDone:
			// Committed after this batch; stop driving.
		default:
			inWindow++
			continue
		}
		break
	}
	if inWindow == 0 {
		t.Fatal("no ApplyBatch completed while the checkpoint dump was in flight: writers were blocked")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	t.Logf("%d batches (%d inside the dump window), p99 apply %v, max %v",
		len(latencies), inWindow, p99, latencies[len(latencies)-1])
	if p99 > time.Second {
		t.Fatalf("p99 ApplyBatch latency %v across a background checkpoint", p99)
	}

	// The pinned snapshot must not have moved.
	for id, p := range probes {
		n, ok := sn.NodeByID(id)
		if !ok || !sameNode(n, p.node) {
			t.Fatalf("pinned node %d drifted across checkpoint: %+v -> %+v", id, p.node, n)
		}
		if !sameIDs(sn.Out(id), p.out) || !sameIDs(sn.In(id), p.in) {
			t.Fatalf("pinned adjacency of %d drifted across checkpoint", id)
		}
	}

	// Recovery: checkpoint (captured mid-stream) + WAL tail must equal
	// the full replay.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ref := openStore(t, t.TempDir())
	defer ref.Close()
	if err := ref.ApplyBatch(base); err != nil {
		t.Fatal(err)
	}
	if err := ref.ApplyBatch(applied); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	storesMustMatch(t, ref, re)
}

// TestCheckpointSerialised: concurrent Checkpoint calls queue rather
// than interleave, and each produces a loadable state.
func TestCheckpointSerialised(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	applyAll(t, s, genIngestEvents(100, t0))
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- s.Checkpoint() }()
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	info := s.CheckpointInfo()
	if info.Bytes == 0 || info.LastAt.IsZero() {
		t.Fatalf("CheckpointInfo = %+v after checkpoints", info)
	}
	if info.WALBytes != 0 {
		t.Fatalf("WAL not truncated after quiescent checkpoint: %d bytes", info.WALBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	snapMustMatchStore(t, re, re.Snapshot())
}

// TestCheckpointEmptyStore: checkpointing an empty store round-trips.
func TestCheckpointEmptyStore(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	if st := re.Stats(); st.Nodes != 0 || st.Edges != 0 {
		t.Fatalf("empty checkpoint loaded %+v", st)
	}
	mustApply(t, re, visit(1, "http://fresh.example/", "Fresh", "", event.TransTyped, t0))
	if _, ok := re.PageByURL("http://fresh.example/"); !ok {
		t.Fatal("store unusable after empty-checkpoint reload")
	}
}

// TestCheckpointAcrossResealInFlight: a checkpoint whose capture chains
// over a pending reseal (gated open) must still flatten and load
// correctly — the dump reads through the same overlay chain readers use.
func TestCheckpointAcrossResealInFlight(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	applyAll(t, s, genIngestEvents(400, t0))
	s.WaitReseal()

	gate := make(chan struct{})
	s.mu.Lock()
	s.sealGate = gate
	s.mu.Unlock()
	s.ForceReseal()
	applyAll(t, s, genIngestEvents(80, t0.Add(2000*time.Minute))) // overlay above the pending capture

	if err := s.Checkpoint(); err != nil { // capture chains tail -> pending -> sealed
		t.Fatal(err)
	}
	close(gate)
	s.WaitReseal()
	s.mu.Lock()
	s.sealGate = nil
	s.mu.Unlock()

	ref := openStore(t, t.TempDir())
	defer ref.Close()
	applyAll(t, ref, genIngestEvents(400, t0))
	applyAll(t, ref, genIngestEvents(80, t0.Add(2000*time.Minute)))

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	storesMustMatch(t, ref, re)
}

// TestCheckpointV2EmptyVisitTitleFidelity: the elision flag, not
// string emptiness, marks a visit title as equal-to-page — a visit
// whose title is genuinely empty while its page has one must come back
// empty, not resurrect the page title. (The v1 record format cannot
// represent this case; v2 must.)
func TestCheckpointV2EmptyVisitTitleFidelity(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	mustApply(t, s,
		visit(1, "http://a.example/", "Titled", "", event.TransTyped, t0),
		visit(1, "http://a.example/", "", "", event.TransTyped, t0.Add(time.Minute)),
	)
	page, _ := s.PageByURL("http://a.example/")
	visits := s.VisitsOfPage(page.ID)
	if len(visits) != 2 {
		t.Fatalf("visits = %v", visits)
	}
	before := make([]Node, len(visits))
	for i, id := range visits {
		before[i], _ = s.NodeByID(id)
	}
	if before[1].Title != "" {
		t.Fatalf("fixture: second visit title = %q, want empty", before[1].Title)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	for i, id := range visits {
		n, _ := re.NodeByID(id)
		if !sameNode(n, before[i]) {
			t.Fatalf("visit %d drifted across v2 round trip: %+v -> %+v", id, before[i], n)
		}
	}
}

// TestCheckpointIdleSkip: a Checkpoint at an unchanged generation is a
// no-op — the on-disk file is already exact.
func TestCheckpointIdleSkip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	defer s.Close()
	applyAll(t, s, genIngestEvents(50, t0))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	first := s.CheckpointInfo()
	time.Sleep(10 * time.Millisecond)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.CheckpointInfo(); !got.LastAt.Equal(first.LastAt) {
		t.Fatalf("idle checkpoint rewrote the file: %v -> %v", first.LastAt, got.LastAt)
	}
	// New events end the idle state.
	applyAll(t, s, genIngestEvents(5, t0.Add(time.Hour)))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.CheckpointInfo(); got.LastAt.Equal(first.LastAt) {
		t.Fatal("post-mutation checkpoint was skipped")
	}
}

// TestCheckpointV2SizeCompact: sanity-check the columnar formats' size
// premises. The legacy varint-columnar (v2) schema must not be larger
// than the v1 record dump of the same store. The raw-column (v3) schema
// Checkpoint writes deliberately trades bytes for zero-copy mmap loading
// (fixed-width arrays, page-aligned sections), so it only gets a bounded
// overhead: at most 2x the record dump plus the worst-case alignment
// padding of its section count.
func TestCheckpointV2SizeCompact(t *testing.T) {
	evs := genIngestEvents(500, t0)
	sizes := make([]int64, 2)
	var v2Size int64
	for i, ckpt := range [2]func(*Store) error{(*Store).CheckpointV1, (*Store).Checkpoint} {
		s := openStore(t, t.TempDir())
		applyAll(t, s, evs)
		if err := ckpt(s); err != nil {
			t.Fatal(err)
		}
		sizes[i] = s.CheckpointInfo().Bytes
		if i == 1 {
			// Same store, legacy v2 schema, written directly.
			s.mu.Lock()
			sn := s.snapshotLocked()
			asm := s.captureAssemblyLocked()
			s.mu.Unlock()
			ep := flattenEpoch(sn)
			path := filepath.Join(t.TempDir(), "v2.snap")
			w, err := storage.CreateSectionFileV2(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := writeSnapshotV2(w, ep, asm, nil, 0); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			v2Size = fi.Size()
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("v1 checkpoint %d bytes, v2 %d bytes, v3 %d bytes", sizes[0], v2Size, sizes[1])
	if v2Size > sizes[0] {
		t.Fatalf("columnar checkpoint (%d B) larger than record checkpoint (%d B)", v2Size, sizes[0])
	}
	if lim := 2*sizes[0] + 40*4096; sizes[1] > lim {
		t.Fatalf("raw-column checkpoint (%d B) exceeds overhead bound (%d B)", sizes[1], lim)
	}
}

// TestLegacyV2SchemaReopen: stores checkpointed by the previous release
// (varint-columnar v2 schema in the unaligned container) must keep
// opening byte-for-byte correctly now that Checkpoint writes the
// raw-column v3 schema. The journal metadata names the snap path without
// hashing its contents, so rewriting the file in the legacy schema
// in-place is exactly the upgrade-in-progress state a user's disk holds.
func TestLegacyV2SchemaReopen(t *testing.T) {
	dir := t.TempDir()
	evs := genIngestEvents(300, t0)
	s := openStore(t, dir)
	applyAll(t, s, evs)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	sn := s.snapshotLocked()
	asm := s.captureAssemblyLocked()
	s.mu.Unlock()
	ep := flattenEpoch(sn)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "provgraph.snap.000001")
	w, err := storage.CreateSectionFileV2(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshotV2(w, ep, asm, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ref := openStore(t, t.TempDir())
	defer ref.Close()
	applyAll(t, ref, evs)

	re := openStore(t, dir)
	defer re.Close()
	storesMustMatch(t, ref, re)
	if mi := re.MappedInfo(); mi.MappedBytes != 0 {
		t.Fatalf("legacy v2 load claimed mapped residency: %+v", mi)
	}
	// And the store upgrades itself on its next checkpoint.
	applyAll(t, re, genIngestEvents(10, t0.Add(time.Hour)))
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
