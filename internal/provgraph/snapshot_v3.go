package provgraph

import (
	"fmt"

	"browserprov/internal/graph"
	"browserprov/internal/storage"
)

// This file implements the v3 checkpoint schema: the same flattened
// sealed epoch the v2 sectioned checkpoint persists, but with every
// fixed-width column dumped as a raw little-endian array in its own
// page-aligned section instead of a varint stream. The point is the
// load path: where v2 decodes ~10^5 varints per column into freshly
// allocated arrays (and materialises a ~140 B/node slab of Node
// structs), a v3 open memory-maps the file and points the sealed epoch
// straight at the section payloads — node fields are reconstructed on
// demand from the mapped columns, strings are substrings of the mapped
// blobs, and the CSR arrays are the file bytes themselves. Nothing is
// copied until something actually needs a mutable form:
//
//   - queries run entirely over the column-backed epoch (plus the
//     rematerialised edge attribute slices, which are tiny — arcs, not
//     nodes);
//   - the first write THAWS the store (Store.thawLocked): the Node slab,
//     the mutable maps and the B-trees materialise then, exactly as a v2
//     load would have built them eagerly. A read-mostly daemon that
//     restarts, answers queries and ingests nothing never pays for any
//     of it.
//
// Durability and recovery semantics are unchanged: same journal
// protocol, same section CRCs (verified lazily, on first access), same
// fallback behaviour. A v3-writing binary still reads v2 checkpoints
// through the legacy eager loader (see Store.loadSections).

// Section tags of the v3 schema. Tags 1–9 (secURLIndex, secTermIndex,
// secAssembly, secText) are shared with v2 and keep their meaning; the
// raw column sections start at 16.
const (
	secV3Meta      = 16 // varints: maxID, nArcs, numNodes
	secV3Flags     = 17 // u8[maxID+1]: kind + nf* presence bits
	secV3Open      = 18 // i64[maxID+1]: open unix-micros
	secV3Close     = 19 // i64[maxID+1]: close unix-micros
	secV3Page      = 20 // u64[maxID+1]: visit -> page identity
	secV3Via       = 21 // u8[maxID+1]: creating transition
	secV3Seq       = 22 // u32[maxID+1]: visit sequence numbers
	secV3URLOff    = 23 // u32[2*(maxID+1)]: (start, end) spans into url blob
	secV3TitleOff  = 24
	secV3TextOff   = 25
	secV3URLBlob   = 26 // raw string bytes
	secV3TitleBlob = 27
	secV3TextBlob  = 28
	secV3OutOff    = 29 // u32[maxID+2]: CSR out offsets
	secV3OutAdj    = 30 // u64[nArcs]: CSR out targets, arc order
	secV3ArcKind   = 31 // u8[nArcs]: edge kinds, arc order
	secV3ArcAt     = 32 // i64[nArcs]: edge times, arc order
	secV3InOff     = 33 // u32[maxID+2]: in-adjacency offsets
	secV3InFrom    = 34 // u64[nArcs]: in-adjacency sources, insertion order
	secV3InKind    = 35 // u8[nArcs]
	secV3InAt      = 36 // i64[nArcs]
	secV3OpenTL    = 37 // i64[2*nOpen]: (at, id) visit timeline, sorted
	secV3VisitsOff = 38 // u32[maxID+2]: per-page visit list offsets
	secV3VisitIDs  = 39 // u64[nVisits]
	secV3Downloads = 40 // u64[nDownloads], creation order
)

// writeSnapshotV3 streams a flattened epoch as raw column sections. It
// reads the epoch only through its accessors, so it serves both
// slab-backed epochs (flattened live state) and column-backed ones (a
// tail-empty re-checkpoint of a store that was itself v3-loaded).
func writeSnapshotV3(w *storage.SectionWriter, ep *sealedEpoch, asm assemblyCapture, text []byte, textWM NodeID) error {
	maxID := ep.maxID
	n1 := int(maxID) + 1

	flags := make([]byte, n1)
	openUS := make([]int64, n1)
	closeUS := make([]int64, n1)
	page := make([]NodeID, n1)
	via := make([]byte, n1)
	seq := make([]uint32, n1)
	urlOff := make([]uint32, 2*n1)
	titleOff := make([]uint32, 2*n1)
	textOff := make([]uint32, 2*n1)
	var urlBlob, titleBlob, textBlob []byte
	numNodes := 0

	// span writes one string field: a visit field equal to its page's is
	// stored as the page's span (page IDs always precede their visits),
	// anything else appends its own bytes. The nf* presence bit mirrors
	// the v2 semantics — set exactly when the node owns its bytes — so a
	// genuinely empty visit title under a titled page stays a zero-length
	// own span, not a resurrected page title.
	span := func(off []uint32, blob []byte, id NodeID, v string, pageID NodeID, pv string, shared bool) []byte {
		if shared && v == pv {
			off[2*id], off[2*id+1] = off[2*pageID], off[2*pageID+1]
			return blob
		}
		off[2*id] = uint32(len(blob))
		blob = append(blob, v...)
		off[2*id+1] = uint32(len(blob))
		return blob
	}

	for id := NodeID(1); id <= maxID; id++ {
		n, ok := ep.nodeAt(id)
		if !ok {
			continue
		}
		numNodes++
		f := byte(n.Kind) & nfKindMask
		if !n.Close.IsZero() {
			f |= nfClose
			closeUS[id] = micro(n.Close)
		}
		openUS[id] = micro(n.Open)
		page[id] = n.Page
		via[id] = byte(n.Via)
		seq[id] = uint32(n.VisitSeq)
		var pURL, pTitle string
		shared := false
		if n.Kind == KindVisit && n.Page != 0 && n.Page < id {
			if p, ok := ep.nodeAt(n.Page); ok {
				pURL, pTitle, shared = p.URL, p.Title, true
			}
		}
		if !(shared && n.URL == pURL) {
			f |= nfURL
		}
		if !(shared && n.Title == pTitle) {
			f |= nfTitle
		}
		if n.Text != "" {
			f |= nfText
		}
		if n.VisitSeq != 0 {
			f |= nfSeq
		}
		flags[id] = f
		urlBlob = span(urlOff, urlBlob, id, n.URL, n.Page, pURL, shared)
		titleBlob = span(titleOff, titleBlob, id, n.Title, n.Page, pTitle, shared)
		textBlob = span(textOff, textBlob, id, n.Text, 0, "", false)
	}

	_, outOffU32, outAdj := ep.csr.Parts()
	nArcs := len(outAdj)
	arcKind := make([]byte, nArcs)
	arcAt := make([]int64, nArcs)
	for i := range ep.edges {
		arcKind[i] = byte(ep.edges[i].Kind)
		arcAt[i] = micro(ep.edges[i].At)
	}
	inKind := make([]byte, nArcs)
	inAt := make([]int64, nArcs)
	for i := range ep.inEdges {
		inKind[i] = byte(ep.inEdges[i].Kind)
		inAt[i] = micro(ep.inEdges[i].At)
	}
	openTL := make([]int64, 2*len(ep.open))
	for i, ent := range ep.open {
		openTL[2*i] = ent.at
		openTL[2*i+1] = int64(ent.id)
	}

	if err := w.WriteSection(secV3Meta, func(e *storage.Encoder) error {
		e.Uvarint(uint64(maxID))
		e.Uvarint(uint64(nArcs))
		e.Uvarint(uint64(numNodes))
		return nil
	}); err != nil {
		return err
	}
	raw := func(tag uint32, b []byte) error { return w.WriteSectionBytes(tag, b) }
	steps := []func() error{
		func() error { return raw(secV3Flags, flags) },
		func() error { return raw(secV3Open, i64Bytes(openUS)) },
		func() error { return raw(secV3Close, i64Bytes(closeUS)) },
		func() error { return raw(secV3Page, nodeIDBytes(page)) },
		func() error { return raw(secV3Via, via) },
		func() error { return raw(secV3Seq, u32Bytes(seq)) },
		func() error { return raw(secV3URLOff, u32Bytes(urlOff)) },
		func() error { return raw(secV3TitleOff, u32Bytes(titleOff)) },
		func() error { return raw(secV3TextOff, u32Bytes(textOff)) },
		func() error { return raw(secV3URLBlob, urlBlob) },
		func() error { return raw(secV3TitleBlob, titleBlob) },
		func() error { return raw(secV3TextBlob, textBlob) },
		func() error { return raw(secV3OutOff, u32Bytes(outOffU32)) },
		func() error { return raw(secV3OutAdj, nodeIDBytes(outAdj)) },
		func() error { return raw(secV3ArcKind, arcKind) },
		func() error { return raw(secV3ArcAt, i64Bytes(arcAt)) },
		func() error { return raw(secV3InOff, u32Bytes(ep.inOff)) },
		func() error { return raw(secV3InFrom, nodeIDBytes(ep.inIDs)) },
		func() error { return raw(secV3InKind, inKind) },
		func() error { return raw(secV3InAt, i64Bytes(inAt)) },
		func() error { return raw(secV3OpenTL, i64Bytes(openTL)) },
		func() error { return raw(secV3VisitsOff, u32Bytes(ep.visitsOff)) },
		func() error { return raw(secV3VisitIDs, nodeIDBytes(ep.visitIDs)) },
		func() error { return raw(secV3Downloads, nodeIDBytes(ep.downloads)) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}

	ep.ensureMaps()
	if err := writeSortedIDs(w, secURLIndex, ep.urlToPage); err != nil {
		return err
	}
	if err := writeSortedIDs(w, secTermIndex, ep.termNode); err != nil {
		return err
	}
	if err := writeAssemblySection(w, asm); err != nil {
		return err
	}
	if err := writeDedupSection(w, asm.dedupIDs); err != nil {
		return err
	}
	return writeTextSection(w, text, textWM)
}

// loadSections is the journal's LoadSections callback: it dispatches on
// the schema the checkpoint carries. v3 files load lazily through the
// column-backed path; v2 files take the legacy eager path. Either way
// the loaded state aliases section payloads (column arrays and strings
// in v3, recovered text postings in both), so the store takes ownership
// of the file's reference here and holds it until the last pinned read
// after Close — see Store.unpin.
func (s *Store) loadSections(f *storage.SectionFile) error {
	s.sect = f
	if f.Has(secV3Meta) {
		return s.loadSnapshotV3(f)
	}
	secs, err := f.All()
	if err != nil {
		return err
	}
	return s.loadSnapshotV2(secs)
}

// loadSnapshotV3 installs a column-backed sealed epoch over the section
// file's payloads. Only the per-arc attribute slices and the visit
// timeline are materialised (both are small — arcs and visits, not a
// per-node slab); everything per-node stays in the mapped columns.
// Mutable store state is NOT built here: s.thaw holds the deferred
// installation and runs on the first write (see thawLocked).
func (s *Store) loadSnapshotV3(f *storage.SectionFile) error {
	sec := func(tag uint32, name string) ([]byte, error) {
		p, err := f.Section(tag)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("provgraph: checkpoint missing %s section", name)
		}
		return p, nil
	}
	secLen := func(tag uint32, name string, want int) ([]byte, error) {
		p, err := sec(tag, name)
		if err != nil {
			return nil, err
		}
		if len(p) != want {
			return nil, fmt.Errorf("provgraph: checkpoint %s section is %d bytes, want %d", name, len(p), want)
		}
		return p, nil
	}

	metaP, err := sec(secV3Meta, "meta")
	if err != nil {
		return err
	}
	md := storage.NewDecoder(metaP)
	maxU, err := md.Uvarint()
	if err != nil {
		return err
	}
	maxID := NodeID(maxU)
	nArcsU, err := md.Uvarint()
	if err != nil {
		return err
	}
	nArcs := int(nArcsU)
	numU, err := md.Uvarint()
	if err != nil {
		return err
	}
	numNodes := int(numU)
	n1 := int(maxID) + 1

	cols := &nodeCols{}
	if p, err := secLen(secV3Flags, "flags", n1); err != nil {
		return err
	} else {
		cols.flags = p
	}
	if p, err := secLen(secV3Open, "open", 8*n1); err != nil {
		return err
	} else {
		cols.openUS = aliasI64(p)
	}
	if p, err := secLen(secV3Close, "close", 8*n1); err != nil {
		return err
	} else {
		cols.closeUS = aliasI64(p)
	}
	if p, err := secLen(secV3Page, "page", 8*n1); err != nil {
		return err
	} else {
		cols.page = aliasNodeIDs(p)
	}
	if p, err := secLen(secV3Via, "via", n1); err != nil {
		return err
	} else {
		cols.via = p
	}
	if p, err := secLen(secV3Seq, "seq", 4*n1); err != nil {
		return err
	} else {
		cols.seq = aliasU32(p)
	}
	if p, err := secLen(secV3URLOff, "url offsets", 8*n1); err != nil {
		return err
	} else {
		cols.urlOff = aliasU32(p)
	}
	if p, err := secLen(secV3TitleOff, "title offsets", 8*n1); err != nil {
		return err
	} else {
		cols.titleOff = aliasU32(p)
	}
	if p, err := secLen(secV3TextOff, "text offsets", 8*n1); err != nil {
		return err
	} else {
		cols.textOff = aliasU32(p)
	}
	urlBlobP, err := sec(secV3URLBlob, "url blob")
	if err != nil {
		return err
	}
	titleBlobP, err := sec(secV3TitleBlob, "title blob")
	if err != nil {
		return err
	}
	textBlobP, err := sec(secV3TextBlob, "text blob")
	if err != nil {
		return err
	}
	cols.urlBlob = aliasString(urlBlobP)
	cols.titleBlob = aliasString(titleBlobP)
	cols.textBlob = aliasString(textBlobP)
	if err := checkSpans(cols.urlOff, len(cols.urlBlob), "url"); err != nil {
		return err
	}
	if err := checkSpans(cols.titleOff, len(cols.titleBlob), "title"); err != nil {
		return err
	}
	if err := checkSpans(cols.textOff, len(cols.textBlob), "text"); err != nil {
		return err
	}

	ep := &sealedEpoch{maxID: maxID, cols: cols}

	// ---- out-direction CSR + edge attributes ----
	outOffP, err := secLen(secV3OutOff, "out offsets", 4*(n1+1))
	if err != nil {
		return err
	}
	outAdjP, err := secLen(secV3OutAdj, "out targets", 8*nArcs)
	if err != nil {
		return err
	}
	outOff := aliasU32(outOffP)
	if outOff == nil {
		outOff = make([]uint32, n1+1) // maxID == 0: empty graph
	}
	outAdj := aliasNodeIDs(outAdjP)
	if int(outOff[maxID+1]) != nArcs {
		return fmt.Errorf("provgraph: checkpoint degree sum %d != arc count %d", outOff[maxID+1], nArcs)
	}
	for _, to := range outAdj {
		if to == 0 || to > maxID {
			return fmt.Errorf("provgraph: checkpoint arc target %d out of range", to)
		}
	}
	ep.csr = graph.CSRFromParts(maxID, outOff, outAdj)

	arcKindP, err := secLen(secV3ArcKind, "arc kinds", nArcs)
	if err != nil {
		return err
	}
	arcAtP, err := secLen(secV3ArcAt, "arc times", 8*nArcs)
	if err != nil {
		return err
	}
	arcAt := aliasI64(arcAtP)
	ep.edges = make([]Edge, nArcs)
	arc := 0
	for from := NodeID(1); from <= maxID; from++ {
		for o := outOff[from]; o < outOff[from+1]; o++ {
			ep.edges[arc] = Edge{From: from, To: outAdj[o],
				Kind: EdgeKind(arcKindP[arc]), At: microTime(arcAt[arc])}
			arc++
		}
	}

	// ---- in-direction, per-node insertion order ----
	inOffP, err := secLen(secV3InOff, "in offsets", 4*(n1+1))
	if err != nil {
		return err
	}
	inFromP, err := secLen(secV3InFrom, "in sources", 8*nArcs)
	if err != nil {
		return err
	}
	inKindP, err := secLen(secV3InKind, "in kinds", nArcs)
	if err != nil {
		return err
	}
	inAtP, err := secLen(secV3InAt, "in times", 8*nArcs)
	if err != nil {
		return err
	}
	ep.inOff = aliasU32(inOffP)
	if ep.inOff == nil {
		ep.inOff = make([]uint32, n1+1)
	}
	ep.inIDs = aliasNodeIDs(inFromP)
	if int(ep.inOff[maxID+1]) != nArcs {
		return fmt.Errorf("provgraph: checkpoint in-degree sum %d != arc count %d", ep.inOff[maxID+1], nArcs)
	}
	inAt := aliasI64(inAtP)
	ep.inEdges = make([]Edge, nArcs)
	for to := NodeID(1); to <= maxID; to++ {
		for slot := ep.inOff[to]; slot < ep.inOff[to+1]; slot++ {
			ep.inEdges[slot] = Edge{From: ep.inIDs[slot], To: to,
				Kind: EdgeKind(inKindP[slot]), At: microTime(inAt[slot])}
		}
	}

	// ---- visit timeline ----
	openTLP, err := sec(secV3OpenTL, "open timeline")
	if err != nil {
		return err
	}
	if len(openTLP)%16 != 0 {
		return fmt.Errorf("provgraph: checkpoint open timeline is %d bytes, not 16-aligned", len(openTLP))
	}
	openTL := aliasI64(openTLP)
	ep.open = make([]openEnt, len(openTL)/2)
	for i := range ep.open {
		ep.open[i] = openEnt{at: openTL[2*i], id: NodeID(openTL[2*i+1])}
	}

	// ---- per-page visit lists + downloads ----
	visitsOffP, err := secLen(secV3VisitsOff, "visit offsets", 4*(n1+1))
	if err != nil {
		return err
	}
	ep.visitsOff = aliasU32(visitsOffP)
	if ep.visitsOff == nil {
		ep.visitsOff = make([]uint32, n1+1)
	}
	visitIDsP, err := secLen(secV3VisitIDs, "visit ids", 8*int(ep.visitsOff[maxID+1]))
	if err != nil {
		return err
	}
	ep.visitIDs = aliasNodeIDs(visitIDsP)
	dlsP, err := sec(secV3Downloads, "downloads")
	if err != nil {
		return err
	}
	ep.downloads = aliasNodeIDs(dlsP)

	// ---- secondary index streams: stashed for the thaw ----
	urlIdxP, err := sec(secURLIndex, "url index")
	if err != nil {
		return err
	}
	termIdxP, err := sec(secTermIndex, "term index")
	if err != nil {
		return err
	}

	// ---- assembly state ----
	asmP, err := sec(secAssembly, "assembly")
	if err != nil {
		return err
	}
	if err := s.readAssemblySection(asmP); err != nil {
		return err
	}
	if p, err := f.Section(secDedup); err != nil {
		return err
	} else if p != nil {
		if err := s.readDedupSection(p); err != nil {
			return err
		}
	}

	// ---- text-index postings (optional) ----
	//
	// Aliased, not copied: a v3 load pins the whole file view through the
	// epoch columns anyway, so stashing a subslice costs nothing extra.
	if p, err := f.Section(secText); err != nil {
		return err
	} else if p != nil {
		d := storage.NewDecoder(p)
		wm, err := d.Uvarint()
		if err != nil {
			return err
		}
		payload, err := d.Raw(d.Remaining())
		if err != nil {
			return err
		}
		s.recoveredText = payload
		s.recoveredTextWM = NodeID(wm)
	}

	s.numNodes = numNodes
	s.numEdges = nArcs
	if f.Mapped() {
		s.mappedBytes = f.Size()
	} else {
		s.heapLoadBytes = f.Size()
	}
	s.heapLoadBytes += int64(len(ep.edges)+len(ep.inEdges))*edgeStructBytes +
		int64(len(ep.open))*16
	if maxID == 0 {
		return nil
	}
	s.sealed = ep

	// Deferred mutable install: everything a writer (or a store-level
	// locked read) needs, built on first use. Queries never trigger it —
	// they run against the epoch snapshot above.
	s.thaw = func() { s.thawV3(ep, cols, outOff, outAdj, urlIdxP, termIdxP, numNodes) }
	return nil
}

// thawV3 materialises the store's mutable state from a column-backed
// epoch: the Node slab, the pointer map, capacity-clamped adjacency
// rows, the per-page visit lists and the secondary B-trees — the exact
// state an eager v2 load installs at open. Runs once, under the write
// lock, triggered by the first mutation (or locked store-level read).
func (s *Store) thawV3(ep *sealedEpoch, cols *nodeCols, outOff []uint32, outAdj []NodeID,
	urlIdxP, termIdxP []byte, numNodes int) {
	maxID := ep.maxID
	slab := make([]Node, maxID+1)
	s.nodes = make(map[NodeID]*Node, numNodes)
	s.outE = adjSized[Edge](maxID)
	s.inE = adjSized[Edge](maxID)
	s.outIDs = adjSized[NodeID](maxID)
	s.inIDs = adjSized[NodeID](maxID)
	s.pageVisits = make(map[NodeID][]NodeID, numNodes/4+1)
	s.lastVisitByURL = make(map[string]NodeID, numNodes/4+1)
	for id := NodeID(1); id <= maxID; id++ {
		n, ok := cols.node(id)
		if !ok {
			continue
		}
		slab[id] = n
		s.nodes[id] = &slab[id]
		switch n.Kind {
		case KindBookmark:
			s.bookmarkByURL[n.URL] = id
		case KindDownload:
			s.saveIndex[n.Text] = id
		}
		if lo, hi := outOff[id], outOff[id+1]; hi > lo {
			s.outE.rows[id] = ep.edges[lo:hi:hi]
			s.outIDs.rows[id] = outAdj[lo:hi:hi]
		}
		if lo, hi := ep.inOff[id], ep.inOff[id+1]; hi > lo {
			s.inE.rows[id] = ep.inEdges[lo:hi:hi]
			s.inIDs.rows[id] = ep.inIDs[lo:hi:hi]
		}
		if n.Kind == KindPage {
			if lo, hi := ep.visitsOff[id], ep.visitsOff[id+1]; hi > lo {
				s.pageVisits[id] = ep.visitIDs[lo:hi:hi]
			}
		}
	}
	s.loadedNodes = slab
	if len(ep.downloads) > 0 {
		s.downloads = ep.downloads[:len(ep.downloads):len(ep.downloads)]
	}

	// Secondary B-trees from the persisted sorted streams; a stream that
	// fails to decode falls back to a scan rebuild — slower, always
	// correct (the ascending scan makes the latest term instance win,
	// matching live index semantics).
	if err := loadSortedIndex(urlIdxP, "url index", maxID,
		func(id NodeID) string { return slab[id].URL }, s.urlIndex); err != nil {
		s.urlIndex = storage.NewBTree()
		for id := NodeID(1); id <= maxID; id++ {
			if slab[id].Kind == KindPage {
				s.urlIndex.Put([]byte(slab[id].URL), uint64(id))
			}
		}
	}
	if err := loadSortedIndex(termIdxP, "term index", maxID,
		func(id NodeID) string { return slab[id].Text }, s.termIndex); err != nil {
		s.termIndex = storage.NewBTree()
		for id := NodeID(1); id <= maxID; id++ {
			if slab[id].Kind == KindSearchTerm {
				s.termIndex.Put([]byte(slab[id].Text), uint64(id))
			}
		}
	}
	{
		var keyBuf []byte
		i := 0
		s.openIndex.BulkLoad(func() ([]byte, uint64, bool) {
			if i >= len(ep.open) {
				return nil, 0, false
			}
			ent := ep.open[i]
			i++
			keyBuf = appendTimeKey(keyBuf[:0], microTime(ent.at), ent.id)
			return keyBuf, uint64(ent.id), true
		})
	}

	if s.mode == VersionEdges {
		ep.ensureMaps()
		for url, id := range ep.urlToPage {
			s.lastVisitByURL[url] = id
		}
	} else {
		for page := NodeID(1); page <= maxID; page++ {
			if lo, hi := ep.visitsOff[page], ep.visitsOff[page+1]; hi > lo {
				s.lastVisitByURL[slab[page].URL] = ep.visitIDs[hi-1]
			}
		}
	}
	s.heapLoadBytes += int64(maxID+1) * nodeStructBytes
}
