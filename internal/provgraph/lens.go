package provgraph

import "browserprov/internal/graph"

// Lens is a derived view of the provenance graph for personalisation
// algorithms (§3.2): redirect chains are spliced out ("unify edges by
// ignoring nodes from which a redirect or inner content link occurs") and
// embedded/inner-content edges are dropped entirely. Lineage queries use
// the raw store; ranking queries use a Lens.
//
// Lens implements graph.Graph. It holds a read-only reference to the
// store plus a memo table; build a fresh Lens per query (it is cheap) —
// a Lens must not outlive concurrent mutation of the store.
//
// The query engine's read path uses SnapLens (epoch.go) instead: the
// same view over an immutable Snapshot, lock-free and with the memo
// table shared across every query of the epoch. Lens remains for
// store-side callers that want a live view.
type Lens struct {
	s *Store
	// resolved memoises redirect-chain resolution.
	resolved map[NodeID]NodeID
}

// NewLens returns a personalisation view of s.
func (s *Store) NewLens() *Lens {
	return &Lens{s: s, resolved: make(map[NodeID]NodeID)}
}

// spliced reports whether n is removed from the unified view: a node from
// which a redirect occurs.
func (l *Lens) spliced(n NodeID) bool {
	for _, e := range l.s.outE.at(n) {
		if e.Kind == EdgeRedirectPermanent || e.Kind == EdgeRedirectTemporary {
			return true
		}
	}
	return false
}

// resolve follows redirect out-edges from n to the final non-redirecting
// node. Chains are bounded to guard against pathological input.
func (l *Lens) resolve(n NodeID) NodeID {
	if r, ok := l.resolved[n]; ok {
		return r
	}
	cur := n
	for hops := 0; hops < 32; hops++ {
		next := NodeID(0)
		for _, e := range l.s.outE.at(cur) {
			if e.Kind == EdgeRedirectPermanent || e.Kind == EdgeRedirectTemporary {
				next = e.To
				break
			}
		}
		if next == 0 {
			break
		}
		cur = next
	}
	l.resolved[n] = cur
	return cur
}

// Out implements graph.Graph: raw successors with embeds dropped and
// redirect targets resolved to their chain ends.
func (l *Lens) Out(n NodeID) []NodeID {
	l.s.rlockThawed()
	defer l.s.mu.RUnlock()
	var out []NodeID
	for _, e := range l.s.outE.at(n) {
		if e.Kind == EdgeEmbed || e.Kind == EdgeFramedLink {
			continue
		}
		t := l.resolve(e.To)
		if t != n {
			out = append(out, t)
		}
	}
	return out
}

// In implements graph.Graph: raw predecessors with embeds dropped and
// spliced (redirecting) predecessors replaced by their own predecessors,
// transitively.
func (l *Lens) In(n NodeID) []NodeID {
	l.s.rlockThawed()
	defer l.s.mu.RUnlock()
	return l.inLocked(n, 0)
}

func (l *Lens) inLocked(n NodeID, depth int) []NodeID {
	if depth > 32 {
		return nil
	}
	var out []NodeID
	for _, e := range l.s.inE.at(n) {
		if e.Kind == EdgeEmbed || e.Kind == EdgeFramedLink {
			continue
		}
		if l.spliced(e.From) {
			out = append(out, l.inLocked(e.From, depth+1)...)
			continue
		}
		out = append(out, e.From)
	}
	return out
}

var _ graph.Graph = (*Lens)(nil)
