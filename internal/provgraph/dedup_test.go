package provgraph

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"browserprov/internal/event"
)

func TestDedupWindowEvictsFIFO(t *testing.T) {
	w := newDedupWindow(3)
	for _, id := range []string{"a", "b", "c"} {
		w.add(id)
	}
	if w.len() != 3 {
		t.Fatalf("len = %d, want 3", w.len())
	}
	w.add("d") // evicts a
	if w.seen("a") {
		t.Fatal("a should have been evicted")
	}
	for _, id := range []string{"b", "c", "d"} {
		if !w.seen(id) {
			t.Fatalf("%s should still be in the window", id)
		}
	}
	w.add("b") // re-add of a live ID is a no-op, not a re-insert
	if w.len() != 3 {
		t.Fatalf("len after duplicate add = %d, want 3", w.len())
	}
	if got := w.snapshot(); len(got) != 3 || got[0] != "b" || got[2] != "d" {
		t.Fatalf("snapshot = %v, want [b c d]", got)
	}
}

func TestDedupWindowCompacts(t *testing.T) {
	w := newDedupWindow(8)
	for i := 0; i < 5000; i++ {
		w.add(fmt.Sprintf("id-%d", i))
	}
	if w.len() != 8 {
		t.Fatalf("len = %d, want 8", w.len())
	}
	// Compaction kicks in once the dead prefix passes 1024: the backing
	// slice must stay bounded instead of growing with total traffic.
	if len(w.q) > 2048 {
		t.Fatalf("backing slice holds %d entries for an 8-ID window: compaction failed", len(w.q))
	}
	for i := 0; i < w.head; i++ {
		if w.q[i] != "" {
			t.Fatalf("evicted slot %d still pins %q", i, w.q[i])
		}
	}
	for i := 4992; i < 5000; i++ {
		if !w.seen(fmt.Sprintf("id-%d", i)) {
			t.Fatalf("id-%d missing from window", i)
		}
	}
}

func batchIDs(prefix string, n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return ids
}

func countApplied(applied []bool) int {
	n := 0
	for _, a := range applied {
		if a {
			n++
		}
	}
	return n
}

func TestApplyBatchDedupSkipsDuplicates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	evs := genIngestEvents(20, time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC))
	ids := batchIDs("b1", len(evs))

	applied, err := s.ApplyBatchDedup(ids, evs)
	if err != nil {
		t.Fatal(err)
	}
	if countApplied(applied) != len(evs) {
		t.Fatalf("first delivery applied %d/%d", countApplied(applied), len(evs))
	}
	before := s.Stats()

	// Exact redelivery: nothing applies, graph unchanged.
	applied, err = s.ApplyBatchDedup(ids, evs)
	if err != nil {
		t.Fatal(err)
	}
	if countApplied(applied) != 0 {
		t.Fatalf("redelivery applied %d events, want 0", countApplied(applied))
	}
	if after := s.Stats(); after != before {
		t.Fatalf("stats changed on redelivery: %+v -> %+v", before, after)
	}

	// Partial overlap: only the fresh suffix applies.
	more := genIngestEvents(5, time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC))
	mixedIDs := append(ids[:3:3], batchIDs("b2", len(more)-3)...)
	applied, err = s.ApplyBatchDedup(mixedIDs, more[:len(mixedIDs)])
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range applied {
		if want := i >= 3; a != want {
			t.Fatalf("applied[%d] = %v, want %v", i, a, want)
		}
	}
}

func TestApplyBatchDedupInBatchDuplicate(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	at := time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC)
	evs := []*event.Event{
		{Time: at, Type: event.TypeVisit, Tab: 1, URL: "http://a.example/", Transition: event.TransTyped},
		{Time: at.Add(time.Second), Type: event.TypeVisit, Tab: 1, URL: "http://b.example/", Transition: event.TransTyped},
		{Time: at.Add(2 * time.Second), Type: event.TypeVisit, Tab: 1, URL: "http://c.example/", Transition: event.TransTyped},
	}
	// Same ID on events 0 and 2 (a client that merged two spool files):
	// first occurrence wins.
	applied, err := s.ApplyBatchDedup([]string{"x", "y", "x"}, evs)
	if err != nil {
		t.Fatal(err)
	}
	if !applied[0] || !applied[1] || applied[2] {
		t.Fatalf("applied = %v, want [true true false]", applied)
	}
	if _, ok := s.PageByURL("http://c.example/"); ok {
		t.Fatal("in-batch duplicate event was applied")
	}
}

func TestApplyBatchDedupUnkeyedAlwaysApplies(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	at := time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC)
	ev := &event.Event{Time: at, Type: event.TypeVisit, Tab: 1,
		URL: "http://a.example/", Transition: event.TransTyped}
	for i := 0; i < 3; i++ {
		applied, err := s.ApplyBatchDedup([]string{""}, []*event.Event{ev})
		if err != nil || !applied[0] {
			t.Fatalf("delivery %d: applied=%v err=%v", i, applied, err)
		}
	}
	if s.DedupWindowLen() != 0 {
		t.Fatalf("un-keyed events must not occupy the window (len=%d)", s.DedupWindowLen())
	}
}

func TestApplyBatchDedupRejectsBadInput(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	at := time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC)
	ok := &event.Event{Time: at, Type: event.TypeVisit, Tab: 1,
		URL: "http://a.example/", Transition: event.TransTyped}

	if _, err := s.ApplyBatchDedup([]string{"a", "b"}, []*event.Event{ok}); !errors.Is(err, ErrInvalidBatch) {
		t.Fatalf("length mismatch: err = %v, want ErrInvalidBatch", err)
	}
	if _, err := s.ApplyBatchDedup([]string{"bad\nid"}, []*event.Event{ok}); !errors.Is(err, ErrInvalidBatch) {
		t.Fatalf("control byte in ID: err = %v, want ErrInvalidBatch", err)
	}
	long := make([]byte, maxEventIDLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := s.ApplyBatchDedup([]string{string(long)}, []*event.Event{ok}); !errors.Is(err, ErrInvalidBatch) {
		t.Fatalf("oversized ID: err = %v, want ErrInvalidBatch", err)
	}
	// A rejected batch must leave no trace.
	if s.DedupWindowLen() != 0 || s.Stats().Nodes != 0 {
		t.Fatal("rejected batch left state behind")
	}
}

// TestDedupSurvivesWALReplay proves the window and the graph recover
// from the same WAL records: after a restart, redelivering an already
// applied batch is still a no-op.
func TestDedupSurvivesWALReplay(t *testing.T) {
	dir := t.TempDir()
	evs := genIngestEvents(30, time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC))
	ids := batchIDs("r", len(evs))

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyBatchDedup(ids, evs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.DedupWindowLen(); got != len(evs) {
		t.Fatalf("window after replay holds %d IDs, want %d", got, len(evs))
	}
	before := s2.Stats()
	applied, err := s2.ApplyBatchDedup(ids, evs)
	if err != nil {
		t.Fatal(err)
	}
	if countApplied(applied) != 0 {
		t.Fatalf("post-restart redelivery applied %d events, want 0", countApplied(applied))
	}
	if after := s2.Stats(); after != before {
		t.Fatalf("stats changed on post-restart redelivery: %+v -> %+v", before, after)
	}
}

// TestDedupSurvivesCheckpoint proves checkpoints persist the window:
// after the WAL prefix is dropped, redelivery is still deduplicated,
// and the recovered store matches a store that saw each batch once.
func TestDedupSurvivesCheckpoint(t *testing.T) {
	for _, ckpt := range []struct {
		name string
		do   func(s *Store) error
	}{
		{"v3", func(s *Store) error { return s.Checkpoint() }},
		{"v1", func(s *Store) error { return s.CheckpointV1() }},
	} {
		t.Run(ckpt.name, func(t *testing.T) {
			dir := t.TempDir()
			evs := genIngestEvents(30, time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC))
			ids := batchIDs("c", len(evs))
			tail := genIngestEvents(8, time.Date(2026, 3, 3, 9, 0, 0, 0, time.UTC))
			tailIDs := batchIDs("t", len(tail))

			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.ApplyBatchDedup(ids, evs); err != nil {
				t.Fatal(err)
			}
			if err := ckpt.do(s); err != nil {
				t.Fatal(err)
			}
			// Keyed WAL tail on top of the checkpoint.
			if _, err := s.ApplyBatchDedup(tailIDs, tail); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got, want := s2.DedupWindowLen(), len(evs)+len(tail); got != want {
				t.Fatalf("window after recovery holds %d IDs, want %d", got, want)
			}
			for _, batch := range [][2]interface{}{{ids, evs}, {tailIDs, tail}} {
				applied, err := s2.ApplyBatchDedup(batch[0].([]string), batch[1].([]*event.Event))
				if err != nil {
					t.Fatal(err)
				}
				if countApplied(applied) != 0 {
					t.Fatalf("redelivery after recovery applied %d events, want 0", countApplied(applied))
				}
			}

			// Reference store that saw everything exactly once.
			ref, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			if _, err := ref.ApplyBatchDedup(ids, evs); err != nil {
				t.Fatal(err)
			}
			if _, err := ref.ApplyBatchDedup(tailIDs, tail); err != nil {
				t.Fatal(err)
			}
			storesMustMatch(t, ref, s2)
		})
	}
}
