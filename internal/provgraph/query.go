package provgraph

import (
	"sort"
	"time"

	"browserprov/internal/graph"
)

// Out implements graph.Graph over the provenance edges.
func (s *Store) Out(n NodeID) []NodeID {
	s.rlockThawed()
	defer s.mu.RUnlock()
	return s.outIDs.at(n)
}

// In implements graph.Graph over the provenance edges.
func (s *Store) In(n NodeID) []NodeID {
	s.rlockThawed()
	defer s.mu.RUnlock()
	return s.inIDs.at(n)
}

// NodeByID returns a copy of the node with the given ID.
func (s *Store) NodeByID(id NodeID) (Node, bool) {
	s.rlockThawed()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// PageByURL returns the page identity node for url.
func (s *Store) PageByURL(url string) (Node, bool) {
	s.rlockThawed()
	defer s.mu.RUnlock()
	id, ok := s.urlIndex.Get([]byte(url))
	if !ok {
		return Node{}, false
	}
	return *s.nodes[NodeID(id)], true
}

// TermNode returns the search-term node for the exact term string.
func (s *Store) TermNode(term string) (Node, bool) {
	s.rlockThawed()
	defer s.mu.RUnlock()
	id, ok := s.termIndex.Get([]byte(term))
	if !ok {
		return Node{}, false
	}
	return *s.nodes[NodeID(id)], true
}

// VisitsOfPage returns the visit instance IDs of a page in visit order.
// In VersionEdges mode pages have no separate instances and the result is
// empty.
func (s *Store) VisitsOfPage(page NodeID) []NodeID {
	s.rlockThawed()
	defer s.mu.RUnlock()
	return append([]NodeID(nil), s.pageVisits[page]...)
}

// VisitCount returns the number of recorded visits of a page node. In
// VersionEdges mode it counts incoming navigation edges instead.
func (s *Store) VisitCount(page NodeID) int {
	s.rlockThawed()
	defer s.mu.RUnlock()
	return s.visitCountLocked(page)
}

func (s *Store) visitCountLocked(page NodeID) int {
	if s.mode == VersionEdges {
		n := len(s.inE.at(page))
		if n == 0 {
			// A page visited once by typing has no in-edges; it still
			// was visited.
			if _, ok := s.nodes[page]; ok {
				return 1
			}
		}
		return n
	}
	return len(s.pageVisits[page])
}

// Downloads returns the IDs of every download node, in creation order.
func (s *Store) Downloads() []NodeID {
	s.rlockThawed()
	defer s.mu.RUnlock()
	return append([]NodeID(nil), s.downloads...)
}

// DownloadBySavePath returns the download node saved at path (the most
// recent one, if several downloads share a save path).
func (s *Store) DownloadBySavePath(path string) (Node, bool) {
	s.rlockThawed()
	defer s.mu.RUnlock()
	id, ok := s.saveIndex[path]
	if !ok {
		return Node{}, false
	}
	return *s.nodes[id], true
}

// NodesSince returns copies of every node with ID > watermark in ID
// order. Node IDs are dense and monotonic, so incremental consumers
// (e.g. the query engine's text index) can catch up in O(delta) instead
// of rescanning all node IDs.
func (s *Store) NodesSince(watermark NodeID) []Node {
	s.rlockThawed()
	defer s.mu.RUnlock()
	var out []Node
	for id := watermark + 1; id < s.nextNode; id++ {
		if n, ok := s.nodes[id]; ok {
			out = append(out, *n)
		}
	}
	return out
}

// OutEdges returns copies of n's outgoing edges.
func (s *Store) OutEdges(n NodeID) []Edge {
	s.rlockThawed()
	defer s.mu.RUnlock()
	return append([]Edge(nil), s.outE.at(n)...)
}

// InEdges returns copies of n's incoming edges.
func (s *Store) InEdges(n NodeID) []Edge {
	s.rlockThawed()
	defer s.mu.RUnlock()
	return append([]Edge(nil), s.inE.at(n)...)
}

// EachNode calls fn for every node in ID order until fn returns false.
func (s *Store) EachNode(fn func(Node) bool) {
	s.rlockThawed()
	ids := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n, ok := s.NodeByID(id)
		if !ok {
			continue
		}
		if !fn(n) {
			return
		}
	}
}

// NodesOfKind returns the IDs of every node of the given kind, in ID
// order.
func (s *Store) NodesOfKind(kind NodeKind) []NodeID {
	s.rlockThawed()
	defer s.mu.RUnlock()
	var out []NodeID
	for id, n := range s.nodes {
		if n.Kind == kind {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllNodeIDs returns every node ID in ID order.
func (s *Store) AllNodeIDs() []NodeID {
	s.rlockThawed()
	defer s.mu.RUnlock()
	out := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OpenBetween returns the visit nodes whose open time t satisfies
// lo <= t < hi, in open order.
func (s *Store) OpenBetween(lo, hi time.Time) []NodeID {
	s.rlockThawed()
	defer s.mu.RUnlock()
	var out []NodeID
	s.openIndex.AscendRange(timeKey(lo, 0), timeKey(hi, 0), func(_ []byte, v uint64) bool {
		out = append(out, NodeID(v))
		return true
	})
	return out
}

// Overlapping returns the visit nodes whose [open, close] interval
// overlaps [lo, hi). A zero close is treated as "open until the end of
// history" (§3.2: without a close, "every page is always open" — here
// that only applies to genuinely unclosed visits).
func (s *Store) Overlapping(lo, hi time.Time) []NodeID {
	s.rlockThawed()
	defer s.mu.RUnlock()
	var out []NodeID
	// Any overlapping visit opened before hi; scan the open index up to
	// hi and filter on close.
	s.openIndex.AscendRange(nil, timeKey(hi, 0), func(_ []byte, v uint64) bool {
		n := s.nodes[NodeID(v)]
		if n.Close.IsZero() || n.Close.After(lo) {
			out = append(out, n.ID)
		}
		return true
	})
	return out
}

// OpenWith returns the visit nodes co-displayed with visit v: those whose
// interval overlaps v's. The direction rule of §3.2 (first-opened points
// to later) is applied by the caller when a direction is needed.
func (s *Store) OpenWith(v NodeID) []NodeID {
	s.rlockThawed()
	n, ok := s.nodes[v]
	if !ok || n.Kind != KindVisit {
		s.mu.RUnlock()
		return nil
	}
	lo, hi := n.Open, n.Close
	s.mu.RUnlock()
	if hi.IsZero() {
		hi = time.Unix(1<<40, 0) // effectively "forever"
	}
	var out []NodeID
	for _, m := range s.Overlapping(lo, hi) {
		if m != v {
			out = append(out, m)
		}
	}
	return out
}

// VerifyDAG checks the provenance invariant: the instance graph must be
// acyclic (§3.1). It returns nil if the invariant holds, or one violating
// cycle.
func (s *Store) VerifyDAG() []NodeID {
	nodes := s.AllNodeIDs()
	return graph.FindCycle(s, nodes)
}

// Stats summarises the store.
type Stats struct {
	Nodes     int
	Edges     int
	Pages     int
	Visits    int
	Bookmarks int
	Downloads int
	Terms     int
	Forms     int
}

// Stats returns node/edge counts by kind.
func (s *Store) Stats() Stats {
	s.rlockThawed()
	defer s.mu.RUnlock()
	st := Stats{Nodes: len(s.nodes), Edges: s.numEdges}
	for _, n := range s.nodes {
		switch n.Kind {
		case KindPage:
			st.Pages++
		case KindVisit:
			st.Visits++
		case KindBookmark:
			st.Bookmarks++
		case KindDownload:
			st.Downloads++
		case KindSearchTerm:
			st.Terms++
		case KindFormEntry:
			st.Forms++
		}
	}
	return st
}
