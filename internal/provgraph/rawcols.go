package provgraph

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Raw fixed-width column codecs for the v3 checkpoint schema. Every v3
// array section is a little-endian dump of its in-memory form; on a
// little-endian machine with an aligned payload (which the page-aligned
// v3 container guarantees), loading is a pointer cast — the mapped file
// bytes ARE the arrays, and untouched pages never fault in. The decode
// branches below exist for big-endian platforms and for legacy readers
// handed unaligned buffers; they produce identical slices, just on the
// heap.

// hostLittleEndian reports the byte order of this machine, computed once.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Struct sizes for the load-time heap accounting MappedInfo reports.
const (
	nodeStructBytes = int64(unsafe.Sizeof(Node{}))
	edgeStructBytes = int64(unsafe.Sizeof(Edge{}))
)

// canAlias reports whether p can be reinterpreted in place as an array
// of elemSize-byte little-endian values.
func canAlias(p []byte, elemSize int) bool {
	if !hostLittleEndian || len(p) == 0 {
		return len(p) == 0 // empty always "aliases" (to a nil slice)
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(p)))%uintptr(elemSize) == 0
}

func aliasU32(p []byte) []uint32 {
	n := len(p) / 4
	if n == 0 {
		return nil
	}
	if canAlias(p, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(p))), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return out
}

func aliasI64(p []byte) []int64 {
	n := len(p) / 8
	if n == 0 {
		return nil
	}
	if canAlias(p, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(p))), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out
}

func aliasNodeIDs(p []byte) []NodeID {
	n := len(p) / 8
	if n == 0 {
		return nil
	}
	if canAlias(p, 8) {
		return unsafe.Slice((*NodeID)(unsafe.Pointer(unsafe.SliceData(p))), n)
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out
}

// aliasString views p as a string without copying. Safe for checkpoint
// payloads: the backing file view is immutable and the store holds a
// reference to it (released only after Close and the last pinned read,
// when no alias can be reached anymore).
func aliasString(p []byte) string {
	if len(p) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(p), len(p))
}

// ---- write-side views: slice -> little-endian bytes ----

func u32Bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 4*len(v))
	}
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], x)
	}
	return out
}

func i64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 8*len(v))
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

func nodeIDBytes(v []NodeID) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 8*len(v))
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// ---- column-backed node table ----

// nodeCols is the zero-copy node table of a v3 checkpoint: per-field
// arrays aliasing the (typically memory-mapped) checkpoint file, plus
// string columns served as substrings of shared blobs. A sealedEpoch
// carrying a nodeCols reconstructs Node values on demand instead of
// holding a ~140-byte-per-node slab on the heap; the slab only
// materialises if the store thaws for writing (see Store.thawLocked).
type nodeCols struct {
	flags   []byte  // kind in the low bits + presence flags (nf*)
	openUS  []int64 // open time, unix micros (0 = zero time)
	closeUS []int64 // close time, unix micros
	page    []NodeID
	via     []byte
	seq     []uint32

	// String spans: (start, end) byte offsets into the per-column blob,
	// at indices (2*id, 2*id+1). Elided visit fields carry their page's
	// span, resolved at write time.
	urlOff    []uint32
	titleOff  []uint32
	textOff   []uint32
	urlBlob   string
	titleBlob string
	textBlob  string
}

func (c *nodeCols) strAt(off []uint32, blob string, id NodeID) string {
	return blob[off[2*id]:off[2*id+1]]
}

// node reconstructs the full Node value for id. Strings are zero-copy
// substrings of the column blobs.
func (c *nodeCols) node(id NodeID) (Node, bool) {
	f := c.flags[id]
	if f == 0 {
		return Node{}, false
	}
	n := Node{
		ID:       id,
		Kind:     NodeKind(f & nfKindMask),
		URL:      c.strAt(c.urlOff, c.urlBlob, id),
		Title:    c.strAt(c.titleOff, c.titleBlob, id),
		Text:     c.strAt(c.textOff, c.textBlob, id),
		Open:     microTime(c.openUS[id]),
		Page:     c.page[id],
		VisitSeq: int(c.seq[id]),
		Via:      EdgeKind(c.via[id]),
	}
	if f&nfClose != 0 {
		n.Close = microTime(c.closeUS[id])
	}
	return n, true
}

func (c *nodeCols) kind(id NodeID) NodeKind {
	return NodeKind(c.flags[id] & nfKindMask)
}

// checkSpans validates one string-offset column against its blob so a
// corrupt (but CRC-clean, i.e. impossible in practice) file cannot
// induce out-of-range substring panics later.
func checkSpans(off []uint32, blobLen int, name string) error {
	for i := 0; i+1 < len(off); i += 2 {
		if off[i] > off[i+1] || int(off[i+1]) > blobLen {
			return fmt.Errorf("provgraph: checkpoint %s span %d out of range", name, i/2)
		}
	}
	return nil
}
