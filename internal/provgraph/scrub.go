package provgraph

// Online integrity scrubbing: a background sweep that re-verifies the
// live checkpoint's section CRCs and the WAL's frame CRCs in bounded
// time slices, so silent on-disk corruption (bit rot, a misdirected
// write) is detected while the store is serving instead of at the next
// unlucky open.
//
// The checkpoint half rides the lazy per-section CRC machinery: a
// mapped (MAP_SHARED) checkpoint's payload bytes come straight off the
// file, so re-checksumming a section through SectionFile.VerifyTag
// observes current disk content at page-cache cost — no locks, no
// read-path stalls, queries on other sections proceed untouched. For
// stores whose checkpoint is not mapped (NoMmap, or a v1 snapshot) the
// in-memory copy cannot reveal disk rot, so the sweep re-reads the
// snapshot file by path instead. The WAL half re-reads the log file
// through its own descriptor (ScrubWALFile), which is safe against
// concurrent appends, trims and rename swaps.

import (
	"os"
	"time"

	"browserprov/internal/storage"
)

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// ScrubStatus is the cumulative record of a store's integrity sweeps
// (JSON-tagged for the daemon's /stats).
type ScrubStatus struct {
	// LastScrub is when the last complete sweep (every section + the
	// WAL) finished; zero if none has yet.
	LastScrub time.Time `json:"last_scrub"`
	// Sweeps counts completed full sweeps.
	Sweeps uint64 `json:"sweeps"`
	// SectionsVerified counts section re-verifications across all
	// sweeps (whole-snapshot re-reads of unmapped stores count one).
	SectionsVerified uint64 `json:"sections_verified"`
	// FramesVerified counts WAL frames re-verified across all sweeps.
	FramesVerified uint64 `json:"wal_frames_verified"`
	// Corruptions counts integrity failures detected.
	Corruptions uint64 `json:"corruptions"`
	// LastError is the most recent integrity failure ("" if none).
	LastError string `json:"last_error,omitempty"`
}

// scrubCursor tracks a sweep's position so each ScrubStep does a
// bounded slice of work and the sweep resumes where it left off. The
// sect pointer is only ever compared for identity (a new checkpoint
// view restarts the sweep), never dereferenced after its pin lapses.
type scrubCursor struct {
	sect *storage.SectionFile
	tags []uint32
	next int
}

// ScrubStep runs one bounded slice of the integrity sweep: it verifies
// checkpoint sections until budget elapses, and finishes the sweep with
// a WAL frame scan once every section has been covered. A budget <= 0
// means "no limit" (the step completes a whole sweep).
//
// It returns done=true when a full sweep completed this step. Any
// integrity failure is returned (and counted in ScrubStatus); the sweep
// restarts from the top on the next call. ErrClosed is returned once
// the store is closing — the caller's scrub loop should stop.
func (s *Store) ScrubStep(budget time.Duration) (done bool, err error) {
	release, err := s.PinRead()
	if err != nil {
		return false, err
	}
	defer release()
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()

	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}

	// Section phase, only for mapped checkpoint views (an unmapped view
	// is re-read from disk in the completion phase below). The pin taken
	// above keeps s.sect alive and stable for the whole step.
	sect := s.sect
	if sect != nil && sect.Mapped() {
		if s.scrubCur.sect != sect {
			s.scrubCur = scrubCursor{sect: sect, tags: sect.Tags()}
		}
		for s.scrubCur.next < len(s.scrubCur.tags) {
			tag := s.scrubCur.tags[s.scrubCur.next]
			s.scrubCur.next++
			s.scrubStat.SectionsVerified++
			if err := sect.VerifyTag(tag); err != nil {
				s.scrubFailLocked(err)
				return false, err
			}
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return false, nil // budget spent; resume next step
			}
		}
	} else {
		s.scrubCur = scrubCursor{}
		if path := s.snapshotPathLocked(); path != "" {
			if err := verifySnapshotIgnoringSupersede(path); err != nil {
				s.scrubFailLocked(err)
				return false, err
			}
			s.scrubStat.SectionsVerified++
		}
	}

	// Completion phase: the WAL. One checkpoint interval of log (two
	// under retention) — small enough to take as a single slice.
	frames, err := ScrubWALFile(s)
	s.scrubStat.FramesVerified += uint64(frames)
	if err != nil {
		s.scrubFailLocked(err)
		s.scrubCur = scrubCursor{}
		return false, err
	}
	s.scrubCur = scrubCursor{}
	s.scrubStat.Sweeps++
	s.scrubStat.LastScrub = time.Now()
	return true, nil
}

// ScrubWALFile re-verifies every frame CRC of the store's live WAL file
// through an independent descriptor. Exposed separately so callers can
// scrub the log without sweeping the checkpoint.
func ScrubWALFile(s *Store) (frames int, err error) {
	return storage.ScrubWALFile(s.j.WALPath())
}

// verifySnapshotIgnoringSupersede fully verifies the snapshot at path,
// treating a vanished file as clean: a checkpoint that committed while
// the sweep was queued removes the superseded snapshot, which is not
// corruption.
func verifySnapshotIgnoringSupersede(path string) error {
	err := storage.VerifySnapshotFile(path)
	if err != nil && !fileExists(path) {
		return nil
	}
	return err
}

// scrubFailLocked records an integrity failure. Caller holds scrubMu.
func (s *Store) scrubFailLocked(err error) {
	s.scrubStat.Corruptions++
	s.scrubStat.LastError = err.Error()
}

// snapshotPathLocked snapshots the current checkpoint path under the
// store read lock (a background checkpoint commit mutates it).
func (s *Store) snapshotPathLocked() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.j.SnapshotPath()
}

// ScrubStatus returns the store's cumulative scrub counters.
func (s *Store) ScrubStatus() ScrubStatus {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	return s.scrubStat
}

// Scrub runs complete sweeps in budget-bounded steps until one sweep
// finishes, sleeping pause between steps (0 = no pause). It is the
// convenience loop over ScrubStep for callers that want "scrub this
// store now" semantics with bounded read-path impact.
func (s *Store) Scrub(budget, pause time.Duration) error {
	for {
		done, err := s.ScrubStep(budget)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if pause > 0 {
			time.Sleep(pause)
		}
	}
}

// RepairStore attempts offline repair of the store journal in dir: if
// the current checkpoint is corrupt it falls back to the retained
// previous generation plus WAL replay (see storage.RepairJournal; the
// store must have been running with Options.RetainPrevCheckpoint for a
// fallback to exist). The store must be closed. On success the next
// OpenWith recovers every logged event.
func RepairStore(dir string) (*storage.RepairReport, error) {
	return storage.RepairJournal(dir, "provgraph")
}
