package provgraph

import (
	"sort"
	"strings"
	"time"

	"browserprov/internal/storage"
)

// EdgeExpiredSplice marks an edge synthesised by expiration: it stands
// for a path that ran through since-expired instances, preserving
// reachability between retained nodes.
const EdgeExpiredSplice EdgeKind = 107

// spliceFanoutLimit bounds the in×out product when splicing around one
// expired node; beyond it, connectivity through that node is dropped
// rather than exploding the edge count.
const spliceFanoutLimit = 64

// ExpireBefore removes history older than cutoff, the way browsers
// expire visits — but provenance-aware:
//
//   - downloads and bookmarks never expire, and neither does their
//     ancestor closure: the lineage answering "how did I get this file?"
//     (§2.4) must survive history expiration;
//   - everything else opened before cutoff is removed;
//   - where an expired instance connected retained nodes, a splice edge
//     preserves the reachability (so descendant queries stay sound);
//   - page identity nodes survive only while they have retained visits
//     or retained objects referencing their URL.
//
// The post-expiration state is immediately checkpointed (the event log
// cannot replay an expiration, so the snapshot must capture it); if the
// checkpoint fails the store is closed-unsafe and the error is returned.
// ExpireBefore returns the number of nodes removed.
func (s *Store) ExpireBefore(cutoff time.Time) (int, error) {
	// ckptMu first (lock order): the rewrite plus its checkpoint must
	// not interleave with a background columnar checkpoint — a dump
	// captured pre-rewrite committing after it would resurrect expired
	// history on the next recovery.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()

	// The rewrite walks and rebuilds the write-side structures; a mapped
	// open that deferred them must materialise first.
	s.thawLocked()

	retained := s.retainedSet(cutoff)

	// Collect splice edges before mutating anything.
	type splice struct {
		from, to NodeID
		at       time.Time
	}
	var splices []splice
	for id, n := range s.nodes {
		if retained[id] || n.Kind == KindPage {
			continue
		}
		ins := s.inE.at(id)
		outs := s.outE.at(id)
		if len(ins)*len(outs) > spliceFanoutLimit {
			continue
		}
		for _, ie := range ins {
			if !retained[ie.From] {
				continue
			}
			for _, oe := range outs {
				if !retained[oe.To] {
					continue
				}
				splices = append(splices, splice{from: ie.From, to: oe.To, at: n.Open})
			}
		}
	}

	// Rebuild node and edge state from the retained set.
	removed := 0
	oldNodes := s.nodes
	oldOut := s.outE
	s.nodes = make(map[NodeID]*Node, len(retained))
	s.outE = adjRows[Edge]{}
	s.inE = adjRows[Edge]{}
	s.outIDs = adjRows[NodeID]{}
	s.inIDs = adjRows[NodeID]{}
	s.urlIndex = storage.NewBTree()
	s.termIndex = storage.NewBTree()
	s.openIndex = storage.NewBTree()
	s.pageVisits = make(map[NodeID][]NodeID)
	s.bookmarkByURL = make(map[string]NodeID)
	s.downloads = nil
	s.saveIndex = make(map[string]NodeID)
	s.numEdges = 0
	// The wholesale rewrite invalidates the sealed epoch: discard it and
	// move to a new generation so cached snapshots expire.
	s.epochReset()
	s.gen.Add(1)
	// And it invalidates any registered text-index checkpoint source:
	// the engine's index still holds the purged history, and a later
	// checkpoint saving it would resurrect expired terms on restart.
	// The replacement engine (History rebuilds it after expiration)
	// re-registers.
	s.textSource = nil
	s.recoveredText = nil

	ids := make([]NodeID, 0, len(oldNodes))
	for id := range oldNodes {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	// Nodes are block-allocated (see newNode): copy survivors out of
	// their blocks so expired neighbors in the same block — and the
	// privacy-sensitive URLs/terms they reference — actually become
	// unreachable, and drop the current partial block with them. The
	// strings are cloned too: checkpoint-loaded nodes hold zero-copy
	// substrings of one shared column blob, and a survivor keeping that
	// blob alive would keep every expired URL in it alive as well.
	s.nodeBlock = nil
	s.loadedNodes = nil // survivors get fresh copies; drop the slab
	for _, id := range ids {
		if !retained[id] {
			removed++
			continue
		}
		cp := *oldNodes[id]
		cp.URL = strings.Clone(cp.URL)
		cp.Title = strings.Clone(cp.Title)
		cp.Text = strings.Clone(cp.Text)
		s.nodes[id] = &cp
		s.indexNode(&cp)
	}
	for _, id := range ids {
		if !retained[id] {
			continue
		}
		for _, e := range oldOut.at(id) {
			if retained[e.To] {
				s.addEdge(e.From, e.To, e.Kind, e.At)
			}
		}
	}
	for _, sp := range splices {
		s.addEdge(sp.from, sp.to, EdgeExpiredSplice, sp.at)
	}
	s.numNodes = len(s.nodes)

	// Assembly state referencing expired nodes is dropped.
	for tab, v := range s.tabCur {
		if !retained[v] {
			delete(s.tabCur, tab)
		}
	}
	for url, v := range s.lastVisitByURL {
		if !retained[v] {
			delete(s.lastVisitByURL, url)
		}
	}
	for tab, p := range s.pendingSearch {
		if !retained[p.node] {
			delete(s.pendingSearch, tab)
		}
	}
	for tab, p := range s.pendingForm {
		if !retained[p.node] {
			delete(s.pendingForm, tab)
		}
	}

	// The event log cannot reproduce this state; checkpoint now, under
	// the lock (the background columnar path would release it, and
	// events applied between the rewrite and its checkpoint would
	// replay over pre-expiration state on recovery). The dump is the
	// same sectioned columnar format Checkpoint writes, with one
	// deliberate omission: no text-postings section — the engine's
	// index still references the purged history, and persisting it
	// would resurrect expired terms after a restart.
	sn := s.snapshotLocked()
	asm := s.captureAssemblyLocked()
	ticket, err := s.j.BeginCheckpoint()
	if err != nil {
		return removed, err
	}
	ep := flattenEpoch(sn)
	if err := ticket.WriteSections(func(w *storage.SectionWriter) error {
		return writeSnapshotV3(w, ep, asm, nil, 0)
	}); err != nil {
		return removed, err
	}
	if err := s.j.CommitCheckpoint(ticket); err != nil {
		return removed, err
	}
	return removed, nil
}

// retainedSet computes the survivors of an expiration at cutoff.
func (s *Store) retainedSet(cutoff time.Time) map[NodeID]bool {
	retained := make(map[NodeID]bool, len(s.nodes))

	// Recent instances and permanent objects survive.
	var pins []NodeID
	for id, n := range s.nodes {
		switch {
		case n.Kind == KindPage:
			// Decided after visits are known.
		case n.Kind == KindDownload || n.Kind == KindBookmark:
			retained[id] = true
			pins = append(pins, id)
		case !n.Open.Before(cutoff):
			retained[id] = true
		}
	}
	// Lineage pinning: the full ancestor closure of downloads and
	// bookmarks survives regardless of age. (Traverses raw adjacency —
	// the caller holds the write lock, so the locking graph.Graph view
	// must not be used here.)
	seen := make(map[NodeID]bool, len(pins)*4)
	queue := append([]NodeID(nil), pins...)
	for _, p := range pins {
		seen[p] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		retained[n] = true
		for _, m := range s.inIDs.at(n) {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	// Pages survive while something retained references them.
	for id, n := range s.nodes {
		if n.Kind != KindPage {
			continue
		}
		for _, v := range s.pageVisits[id] {
			if retained[v] {
				retained[id] = true
				break
			}
		}
	}
	// Bookmarks keep their page identity alive too (the URL remains
	// meaningful in the UI even with zero retained visits).
	for url := range s.bookmarkByURL {
		if pid, ok := s.urlIndex.Get([]byte(url)); ok {
			retained[NodeID(pid)] = true
		}
	}
	return retained
}

func sortNodeIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
