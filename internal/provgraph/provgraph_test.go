package provgraph

import (
	"fmt"
	"testing"
	"time"

	"browserprov/internal/event"
	"browserprov/internal/graph"
)

var t0 = time.Date(2008, 11, 1, 9, 0, 0, 0, time.UTC)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustApply(t *testing.T, s *Store, evs ...*event.Event) {
	t.Helper()
	for _, ev := range evs {
		if err := s.Apply(ev); err != nil {
			t.Fatalf("Apply(%v %s): %v", ev.Type, ev.URL, err)
		}
	}
}

func visit(tab int, url, title, ref string, tr event.Transition, at time.Time) *event.Event {
	return &event.Event{Time: at, Type: event.TypeVisit, Tab: tab, URL: url, Title: title, Referrer: ref, Transition: tr}
}

func TestVisitCreatesPageAndInstance(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s, visit(1, "http://a.example/", "A", "", event.TransTyped, t0))
	page, ok := s.PageByURL("http://a.example/")
	if !ok {
		t.Fatal("page missing")
	}
	if page.Kind != KindPage {
		t.Fatalf("kind = %v", page.Kind)
	}
	vs := s.VisitsOfPage(page.ID)
	if len(vs) != 1 {
		t.Fatalf("visits = %v", vs)
	}
	v, _ := s.NodeByID(vs[0])
	if v.Kind != KindVisit || v.Page != page.ID || v.VisitSeq != 1 {
		t.Fatalf("visit = %+v", v)
	}
}

func TestLinkTraversalEdge(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://b.example/", "B", "http://a.example/", event.TransLink, t0.Add(time.Minute)),
	)
	pb, _ := s.PageByURL("http://b.example/")
	vb := s.VisitsOfPage(pb.ID)[0]
	ins := s.InEdges(vb)
	if len(ins) != 1 || ins[0].Kind != EdgeLink {
		t.Fatalf("in edges = %+v", ins)
	}
	from, _ := s.NodeByID(ins[0].From)
	if from.URL != "http://a.example/" || from.Kind != KindVisit {
		t.Fatalf("edge source = %+v", from)
	}
}

// TestTypedNavigationKeepsRelationship is the §3.2 fix: unlike Places,
// the provenance store records an edge for typed navigations.
func TestTypedNavigationKeepsRelationship(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://b.example/", "B", "", event.TransTyped, t0.Add(time.Minute)),
	)
	pb, _ := s.PageByURL("http://b.example/")
	vb := s.VisitsOfPage(pb.ID)[0]
	ins := s.InEdges(vb)
	if len(ins) != 1 || ins[0].Kind != EdgeTyped {
		t.Fatalf("typed navigation edge missing: %+v", ins)
	}
}

// TestRevisitCreatesNewVersion pins the §3.1 cycle-breaking scheme: a
// link back to an already-visited page creates a new visit instance, so
// the instance graph stays acyclic.
func TestRevisitCreatesNewVersion(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://search.example/", "Search", "", event.TransTyped, t0),
		visit(1, "http://film.example/", "Film", "http://search.example/", event.TransLink, t0.Add(time.Minute)),
		// ... and back to the search page.
		visit(1, "http://search.example/", "Search", "http://film.example/", event.TransLink, t0.Add(2*time.Minute)),
	)
	ps, _ := s.PageByURL("http://search.example/")
	vs := s.VisitsOfPage(ps.ID)
	if len(vs) != 2 {
		t.Fatalf("search page has %d instances, want 2", len(vs))
	}
	v2, _ := s.NodeByID(vs[1])
	if v2.VisitSeq != 2 {
		t.Fatalf("second instance VisitSeq = %d", v2.VisitSeq)
	}
	if cycle := s.VerifyDAG(); cycle != nil {
		t.Fatalf("cycle in instance graph: %v", cycle)
	}
}

func TestCloseTimestamps(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://b.example/", "B", "http://a.example/", event.TransLink, t0.Add(10*time.Minute)),
	)
	pa, _ := s.PageByURL("http://a.example/")
	va, _ := s.NodeByID(s.VisitsOfPage(pa.ID)[0])
	if !va.Close.Equal(t0.Add(10 * time.Minute)) {
		t.Fatalf("A close = %v, want navigation time", va.Close)
	}
	// B is still open.
	pb, _ := s.PageByURL("http://b.example/")
	vb, _ := s.NodeByID(s.VisitsOfPage(pb.ID)[0])
	if !vb.Close.IsZero() {
		t.Fatalf("B close = %v, want zero (still open)", vb.Close)
	}
	// Explicit close event.
	mustApply(t, s, &event.Event{Time: t0.Add(20 * time.Minute), Type: event.TypeClose, Tab: 1, URL: "http://b.example/"})
	vb, _ = s.NodeByID(s.VisitsOfPage(pb.ID)[0])
	if !vb.Close.Equal(t0.Add(20 * time.Minute)) {
		t.Fatalf("B close = %v after close event", vb.Close)
	}
}

func TestTabsIsolateContext(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(2, "http://x.example/", "X", "", event.TransTyped, t0.Add(time.Minute)),
		// Navigation in tab 1 must not chain from tab 2's page.
		visit(1, "http://b.example/", "B", "http://a.example/", event.TransLink, t0.Add(2*time.Minute)),
	)
	pb, _ := s.PageByURL("http://b.example/")
	ins := s.InEdges(s.VisitsOfPage(pb.ID)[0])
	if len(ins) != 1 {
		t.Fatalf("in edges = %+v", ins)
	}
	from, _ := s.NodeByID(ins[0].From)
	if from.URL != "http://a.example/" {
		t.Fatalf("edge from %s, want a.example", from.URL)
	}
	// Tab 1's navigation must not close tab 2's page.
	px, _ := s.PageByURL("http://x.example/")
	vx, _ := s.NodeByID(s.VisitsOfPage(px.ID)[0])
	if !vx.Close.IsZero() {
		t.Fatal("tab 2 page closed by tab 1 navigation")
	}
}

func TestNewTabEdge(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(2, "http://b.example/", "B", "http://a.example/", event.TransNewTab, t0.Add(time.Minute)),
	)
	pb, _ := s.PageByURL("http://b.example/")
	ins := s.InEdges(s.VisitsOfPage(pb.ID)[0])
	if len(ins) != 1 || ins[0].Kind != EdgeNewTab {
		t.Fatalf("new-tab edge = %+v", ins)
	}
	// Opener stays open (new tab doesn't replace it).
	pa, _ := s.PageByURL("http://a.example/")
	va, _ := s.NodeByID(s.VisitsOfPage(pa.ID)[0])
	if !va.Close.IsZero() {
		t.Fatal("opener closed by new-tab navigation")
	}
}

func TestSearchTermNode(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	resultsURL := "http://search.example/?q=rosebud"
	mustApply(t, s,
		visit(1, "http://home.example/", "Home", "", event.TransTyped, t0),
		&event.Event{Time: t0.Add(time.Minute), Type: event.TypeSearch, Tab: 1, Terms: "rosebud", URL: resultsURL},
		visit(1, resultsURL, "rosebud - Search", "http://home.example/", event.TransLink, t0.Add(time.Minute+time.Second)),
		visit(1, "http://films.example/kane", "Citizen Kane", resultsURL, event.TransSearchResult, t0.Add(2*time.Minute)),
	)
	term, ok := s.TermNode("rosebud")
	if !ok {
		t.Fatal("term node missing")
	}
	// term -> results visit edge
	outs := s.OutEdges(term.ID)
	if len(outs) != 1 || outs[0].Kind != EdgeSearchResults {
		t.Fatalf("term out edges = %+v", outs)
	}
	results, _ := s.NodeByID(outs[0].To)
	if results.URL != resultsURL {
		t.Fatalf("results node = %+v", results)
	}
	// home visit -> term edge
	ins := s.InEdges(term.ID)
	if len(ins) != 1 || ins[0].Kind != EdgeSearchIssued {
		t.Fatalf("term in edges = %+v", ins)
	}
	// Citizen Kane is a descendant of the term node.
	kane, _ := s.PageByURL("http://films.example/kane")
	kv := s.VisitsOfPage(kane.ID)[0]
	reach := graph.Reach(s, term.ID, graph.Forward, -1)
	if _, ok := reach[kv]; !ok {
		t.Fatal("Citizen Kane not reachable from the rosebud term node")
	}
}

// TestSearchTermVersioned pins the §3.1 versioning rule applied to term
// nodes: each issuance creates a fresh instance (one reusable node would
// admit cycles once a descendant of earlier results re-issues the term).
func TestSearchTermVersioned(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	for i := 0; i < 3; i++ {
		at := t0.Add(time.Duration(i) * time.Hour)
		mustApply(t, s,
			visit(1, "http://home.example/", "Home", "", event.TransTyped, at),
			&event.Event{Time: at.Add(time.Minute), Type: event.TypeSearch, Tab: 1, Terms: "wine", URL: "http://search.example/?q=wine"},
			visit(1, "http://search.example/?q=wine", "wine - Search", "http://home.example/", event.TransLink, at.Add(time.Minute+time.Second)),
		)
	}
	if got := s.Stats().Terms; got != 3 {
		t.Fatalf("term instances = %d, want 3 (one per issuance)", got)
	}
	term, _ := s.TermNode("wine")
	if term.VisitSeq != 3 {
		t.Fatalf("latest instance VisitSeq = %d, want 3", term.VisitSeq)
	}
	if got := len(s.OutEdges(term.ID)); got != 1 {
		t.Fatalf("latest instance has %d result edges, want 1", got)
	}
	if cycle := s.VerifyDAG(); cycle != nil {
		t.Fatalf("cycle: %v", cycle)
	}
}

// TestTermReissueFromDescendantStaysAcyclic reproduces the cycle that a
// single reusable term node would create: search, click a result, browse
// on, and re-issue the same search from a descendant page.
func TestTermReissueFromDescendantStaysAcyclic(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	results := "http://search.example/?q=wine"
	mustApply(t, s,
		visit(1, "http://home.example/", "Home", "", event.TransTyped, t0),
		&event.Event{Time: t0.Add(time.Minute), Type: event.TypeSearch, Tab: 1, Terms: "wine", URL: results},
		visit(1, results, "wine - Search", "http://home.example/", event.TransLink, t0.Add(2*time.Minute)),
		visit(1, "http://wine.example/shop", "Wine shop", results, event.TransSearchResult, t0.Add(3*time.Minute)),
		// From the result page (a descendant of the term), search again.
		&event.Event{Time: t0.Add(4 * time.Minute), Type: event.TypeSearch, Tab: 1, Terms: "wine", URL: results},
		visit(1, results, "wine - Search", "http://wine.example/shop", event.TransLink, t0.Add(5*time.Minute)),
	)
	if cycle := s.VerifyDAG(); cycle != nil {
		t.Fatalf("term re-issue created a cycle: %v", cycle)
	}
}

func TestBookmarkLifecycle(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		&event.Event{Time: t0.Add(time.Minute), Type: event.TypeBookmarkAdd, Tab: 1, URL: "http://a.example/", Title: "A"},
		// Later: navigate via the bookmark.
		visit(1, "http://a.example/", "A", "", event.TransBookmark, t0.Add(time.Hour)),
	)
	bms := s.NodesOfKind(KindBookmark)
	if len(bms) != 1 {
		t.Fatalf("bookmarks = %v", bms)
	}
	b := bms[0]
	// visit -> bookmark (creation)
	ins := s.InEdges(b)
	if len(ins) != 1 || ins[0].Kind != EdgeBookmarkCreate {
		t.Fatalf("bookmark in edges = %+v", ins)
	}
	// bookmark -> later visit (click)
	outs := s.OutEdges(b)
	if len(outs) != 1 || outs[0].Kind != EdgeBookmarkClick {
		t.Fatalf("bookmark out edges = %+v", outs)
	}
	if cycle := s.VerifyDAG(); cycle != nil {
		t.Fatalf("bookmark cycle: %v", cycle)
	}
}

func TestDownloadLineageChain(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://forum.example/thread", "Forum", "", event.TransTyped, t0),
		visit(1, "http://shady.example/free", "Free Stuff", "http://forum.example/thread", event.TransLink, t0.Add(time.Minute)),
		&event.Event{
			Time: t0.Add(2 * time.Minute), Type: event.TypeDownload, Tab: 1,
			URL: "http://cdn.example/x.exe", Referrer: "http://shady.example/free",
			SavePath: "/home/u/x.exe", ContentType: "application/octet-stream",
		},
	)
	dls := s.Downloads()
	if len(dls) != 1 {
		t.Fatalf("downloads = %v", dls)
	}
	// Ancestor BFS from the download reaches the forum page.
	forum, _ := s.PageByURL("http://forum.example/thread")
	fv := s.VisitsOfPage(forum.ID)[0]
	path, ok := graph.FindFirst(s, dls[0], graph.Backward, false, func(n NodeID) bool { return n == fv })
	if !ok {
		t.Fatal("forum ancestor unreachable from download")
	}
	if len(path) != 3 {
		t.Fatalf("lineage path length = %d, want 3 (download, shady, forum)", len(path))
	}
}

func TestRedirectEdges(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://short.example/r", "", "http://a.example/", event.TransLink, t0.Add(time.Minute)),
		visit(1, "http://target.example/", "Target", "http://short.example/r", event.TransRedirectTemporary, t0.Add(time.Minute+time.Second)),
	)
	pt, _ := s.PageByURL("http://target.example/")
	vt := s.VisitsOfPage(pt.ID)[0]
	ins := s.InEdges(vt)
	if len(ins) != 1 || ins[0].Kind != EdgeRedirectTemporary {
		t.Fatalf("redirect edge = %+v", ins)
	}
}

func TestFormSubmitNodes(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	results := "http://store.example/results"
	mustApply(t, s,
		visit(1, "http://store.example/", "Store", "", event.TransTyped, t0),
		&event.Event{Time: t0.Add(time.Minute), Type: event.TypeFormSubmit, Tab: 1, URL: results, Terms: "red shoes size 9"},
		visit(1, results, "Results", "http://store.example/", event.TransFormSubmit, t0.Add(time.Minute+time.Second)),
	)
	forms := s.NodesOfKind(KindFormEntry)
	if len(forms) != 1 {
		t.Fatalf("form nodes = %v", forms)
	}
	f, _ := s.NodeByID(forms[0])
	if f.Text != "red shoes size 9" {
		t.Fatalf("form text = %q", f.Text)
	}
	outs := s.OutEdges(forms[0])
	if len(outs) != 1 || outs[0].Kind != EdgeFormResults {
		t.Fatalf("form out edges = %+v", outs)
	}
}

func TestOverlappingIntervals(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://wine.example/", "Wine", "", event.TransTyped, t0),
		visit(2, "http://tickets.example/", "Plane tickets", "", event.TransTyped, t0.Add(5*time.Minute)),
		// Close wine at +10m; tickets stays open.
		&event.Event{Time: t0.Add(10 * time.Minute), Type: event.TypeClose, Tab: 1, URL: "http://wine.example/"},
		// A later page that does NOT overlap wine.
		visit(3, "http://later.example/", "Later", "", event.TransTyped, t0.Add(time.Hour)),
	)
	pw, _ := s.PageByURL("http://wine.example/")
	wv := s.VisitsOfPage(pw.ID)[0]
	co := s.OpenWith(wv)
	urls := map[string]bool{}
	for _, id := range co {
		n, _ := s.NodeByID(id)
		urls[n.URL] = true
	}
	if !urls["http://tickets.example/"] {
		t.Fatalf("tickets not co-open with wine: %v", urls)
	}
	if urls["http://later.example/"] {
		t.Fatal("non-overlapping page reported co-open")
	}
}

func TestOpenBetween(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	for i := 0; i < 10; i++ {
		mustApply(t, s, visit(1, fmt.Sprintf("http://p%d.example/", i), "", "", event.TransTyped, t0.Add(time.Duration(i)*time.Hour)))
	}
	got := s.OpenBetween(t0.Add(3*time.Hour), t0.Add(6*time.Hour))
	if len(got) != 3 {
		t.Fatalf("OpenBetween = %d visits, want 3", len(got))
	}
}

func TestPersistenceAcrossReopenAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	resultsURL := "http://search.example/?q=rosebud"
	mustApply(t, s,
		visit(1, "http://home.example/", "Home", "", event.TransTyped, t0),
		&event.Event{Time: t0.Add(time.Minute), Type: event.TypeSearch, Tab: 1, Terms: "rosebud", URL: resultsURL},
		visit(1, resultsURL, "rosebud - Search", "http://home.example/", event.TransLink, t0.Add(time.Minute+time.Second)),
	)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint: click a result; edge must attach to recovered state.
	mustApply(t, s, visit(1, "http://films.example/kane", "Citizen Kane", resultsURL, event.TransSearchResult, t0.Add(2*time.Minute)))
	want := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	if s2.Stats() != want {
		t.Fatalf("stats after reopen = %+v, want %+v", s2.Stats(), want)
	}
	term, ok := s2.TermNode("rosebud")
	if !ok {
		t.Fatal("term lost")
	}
	reach := graph.Reach(s2, term.ID, graph.Forward, -1)
	kane, _ := s2.PageByURL("http://films.example/kane")
	kv := s2.VisitsOfPage(kane.ID)
	if len(kv) != 1 {
		t.Fatal("kane visit lost")
	}
	if _, ok := reach[kv[0]]; !ok {
		t.Fatal("kane unreachable from term after recovery")
	}
	// Ingest continues: new navigation chains from the recovered tab state.
	mustApply(t, s2, visit(1, "http://films.example/kane/cast", "Cast", "http://films.example/kane", event.TransLink, t0.Add(3*time.Minute)))
	cast, _ := s2.PageByURL("http://films.example/kane/cast")
	ins := s2.InEdges(s2.VisitsOfPage(cast.ID)[0])
	if len(ins) != 1 || ins[0].Kind != EdgeLink {
		t.Fatalf("post-recovery edge = %+v", ins)
	}
}

func TestDAGInvariantUnderLongSession(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	// A tight loop between three pages, many times over — the classic
	// cycle-generating browse pattern.
	urls := []string{"http://a.example/", "http://b.example/", "http://c.example/"}
	prev := ""
	for i := 0; i < 60; i++ {
		u := urls[i%3]
		tr := event.TransLink
		if prev == "" {
			tr = event.TransTyped
		}
		mustApply(t, s, visit(1, u, "", prev, tr, t0.Add(time.Duration(i)*time.Minute)))
		prev = u
	}
	if cycle := s.VerifyDAG(); cycle != nil {
		t.Fatalf("instance graph has a cycle: %v", cycle)
	}
	st := s.Stats()
	if st.Pages != 3 || st.Visits != 60 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVersionEdgesModeAllowsPageCycles(t *testing.T) {
	s, err := OpenWith(t.TempDir(), Options{Mode: VersionEdges})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		visit(1, "http://b.example/", "B", "http://a.example/", event.TransLink, t0.Add(time.Minute)),
		visit(1, "http://a.example/", "A", "http://b.example/", event.TransLink, t0.Add(2*time.Minute)),
	)
	st := s.Stats()
	if st.Visits != 0 {
		t.Fatalf("edge-versioned store created %d visit instances", st.Visits)
	}
	if st.Pages != 2 {
		t.Fatalf("pages = %d", st.Pages)
	}
	if cycle := s.VerifyDAG(); cycle == nil {
		t.Fatal("edge-versioned mode should permit a page-level cycle here")
	}
	// The edges still carry timestamps that order the traversals.
	pa, _ := s.PageByURL("http://a.example/")
	for _, e := range s.InEdges(pa.ID) {
		if e.At.IsZero() {
			t.Fatal("edge missing timestamp")
		}
	}
}

func TestStatsCounts(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustApply(t, s,
		visit(1, "http://a.example/", "A", "", event.TransTyped, t0),
		&event.Event{Time: t0.Add(time.Minute), Type: event.TypeBookmarkAdd, Tab: 1, URL: "http://a.example/", Title: "A"},
		&event.Event{Time: t0.Add(2 * time.Minute), Type: event.TypeSearch, Tab: 1, Terms: "q", URL: "http://s.example/?q=q"},
		visit(1, "http://s.example/?q=q", "q", "http://a.example/", event.TransLink, t0.Add(3*time.Minute)),
		&event.Event{Time: t0.Add(4 * time.Minute), Type: event.TypeDownload, Tab: 1, URL: "http://f.example/f.pdf", SavePath: "/tmp/f.pdf"},
	)
	st := s.Stats()
	if st.Pages != 2 || st.Visits != 2 || st.Bookmarks != 1 || st.Terms != 1 || st.Downloads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Nodes != st.Pages+st.Visits+st.Bookmarks+st.Terms+st.Downloads+st.Forms {
		t.Fatalf("node count inconsistent: %+v", st)
	}
}

func TestEdgesAlwaysPointForwardInTime(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	prev := ""
	for i := 0; i < 30; i++ {
		u := fmt.Sprintf("http://p%d.example/", i%7)
		tr := event.TransLink
		if i == 0 {
			tr = event.TransTyped
		}
		mustApply(t, s, visit(1, u, "", prev, tr, t0.Add(time.Duration(i)*time.Minute)))
		prev = u
	}
	bad := 0
	s.EachNode(func(n Node) bool {
		for _, e := range s.OutEdges(n.ID) {
			to, _ := s.NodeByID(e.To)
			if to.Open.Before(n.Open) {
				bad++
			}
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d edges point backward in time", bad)
	}
}
