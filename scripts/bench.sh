#!/usr/bin/env bash
# bench.sh — run the headline query benchmarks and write the results as
# machine-readable JSON to BENCH_results.json, so the performance
# trajectory across PRs is a diffable artifact instead of folklore.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s; 1x for a smoke run)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-2s}"
out=BENCH_results.json
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run=NONE \
  -bench 'BenchmarkSingleSearch$|BenchmarkParallelSearch$|BenchmarkParallelSearchContended$|BenchmarkPerCallOptions$|BenchmarkExpandParallelism$|BenchmarkE2aContextualSearch$|BenchmarkE2bPersonalize$|BenchmarkE2cTimeContext$|BenchmarkE2dLineage$|BenchmarkIngest$|BenchmarkIngestHTTP$|BenchmarkIngestParallelReaders$|BenchmarkApplyAcrossReseal$|BenchmarkColdOpen$|BenchmarkScrubOverhead$' \
  -benchmem -benchtime "$benchtime" . | tee "$tmp"

# Scheduler sweep: the concurrency-sensitive benchmarks again at pinned
# GOMAXPROCS, so scaling (and the serial floor) is part of the artifact.
# Their rows keep an @cpuN suffix below.
go test -run=NONE \
  -bench 'BenchmarkParallelSearch$|BenchmarkExpandParallelism$' \
  -cpu 1,4 -benchmem -benchtime "$benchtime" . | tee -a "$tmp"

# Multi-tenant sweep: 10k small tenant stores behind a 128-store cap,
# zipf-skewed mixed traffic, plus the cross-shard contended pair.
# Override the scale via SHARD_SWEEP_TENANTS / SHARD_SWEEP_CAP (CI runs
# it at 100 tenants).
SHARD_SWEEP_TENANTS="${SHARD_SWEEP_TENANTS:-10000}" \
SHARD_SWEEP_CAP="${SHARD_SWEEP_CAP:-128}" \
go test -run=NONE \
  -bench 'BenchmarkTenantSweep$|BenchmarkParallelSearchSharded$|BenchmarkParallelSearchContendedSharded$' \
  -benchmem -benchtime "$benchtime" . | tee -a "$tmp"

# Replication sweep: steady-state follower lag under paced leader
# ingest over loopback HTTP WAL-shipping (the p50/p99 lag metrics are
# the point; ns/op is pacing-dominated by construction).
go test -run=NONE \
  -bench 'BenchmarkReplicationLag$' \
  -benchmem -benchtime "$benchtime" . | tee -a "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" \
    -v nproc="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)" \
    -v gomaxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)}" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
  name = $1; sub(/^Benchmark/, "", name)
  procs = "1" # go omits the -N suffix entirely at GOMAXPROCS=1
  if (match(name, /-[0-9]+$/)) { procs = substr(name, RSTART + 1); name = substr(name, 1, RSTART - 1) }
  # First sighting of a benchmark keeps the bare name (the default-
  # GOMAXPROCS run); repeats from the -cpu sweep are suffixed so the
  # JSON object never holds duplicate keys.
  key = name
  if (key in seen) key = name "@cpu" procs
  seen[key] = 1
  ns = ""; bytes = ""; allocs = ""; extra = ""
  for (i = 2; i <= NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
    if ($(i+1) == "p99_apply_ns") extra = extra sprintf(", \"p99_apply_ns\": %s", $i)
    if ($(i+1) == "max_apply_ns") extra = extra sprintf(", \"max_apply_ns\": %s", $i)
    if ($(i+1) == "ingested_events/sec") extra = extra sprintf(", \"ingested_events_per_sec\": %s", $i)
    if ($(i+1) == "p99_post_ns") extra = extra sprintf(", \"p99_post_ns\": %s", $i)
    if ($(i+1) == "p50_query_ns") extra = extra sprintf(", \"p50_query_ns\": %s", $i)
    if ($(i+1) == "p99_query_ns") extra = extra sprintf(", \"p99_query_ns\": %s", $i)
    if ($(i+1) == "sweeps") extra = extra sprintf(", \"scrub_sweeps\": %s", $i)
    if ($(i+1) == "reopens") extra = extra sprintf(", \"reopens\": %s", $i)
    if ($(i+1) == "mapped_bytes") extra = extra sprintf(", \"mapped_bytes\": %s", $i)
    if ($(i+1) == "open_tenants") extra = extra sprintf(", \"open_tenants\": %s", $i)
    if ($(i+1) == "p50_lag_ns") extra = extra sprintf(", \"p50_lag_ns\": %s", $i)
    if ($(i+1) == "p99_lag_ns") extra = extra sprintf(", \"p99_lag_ns\": %s", $i)
    if ($(i+1) == "bytes_replicated") extra = extra sprintf(", \"bytes_replicated\": %s", $i)
  }
  if (ns != "") {
    rows[++n] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}",
                        key, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs, extra)
  }
}
END {
  printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"cpu\": \"%s\",\n", date, benchtime, cpu
  printf "  \"nproc\": %s,\n  \"gomaxprocs\": %s,\n  \"mmap_default\": true,\n  \"benchmarks\": {\n", nproc, gomaxprocs
  for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], i < n ? "," : ""
  printf "  }\n}\n"
}' "$tmp" > "$out"

echo "wrote $out"
